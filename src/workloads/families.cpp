// Family emitters for the generated corpus (generator.hpp): each function
// renders one parameterized BenchC program *and* computes its reference
// outputs with a plain-C++ oracle that mirrors the emitted program
// statement by statement.
//
// Bit-exactness contract: the oracle must reproduce the simulator's
// results word for word, so
//   * float arithmetic follows the emitted expression trees exactly, one
//     individually rounded f32 operation per BenchC operation (this file
//     is compiled with -ffp-contract=off — see CMakeLists.txt — so the
//     compiler cannot fuse a*b+c into an FMA the simulator would not
//     perform);
//   * intrinsics call the same libm float overloads the simulator's
//     Intrin opcode calls (std::cos/std::sin on float);
//   * float->int casts replicate sim::fp_to_int (NaN and out-of-range
//     map to 0);
//   * integer ops stay inside i32 ranges by construction (bounded taps,
//     coefficients, and inputs), so C++ signed arithmetic is defined and
//     agrees with the simulator's wrapping u32 ops.
// Emitted float literals use 9 significant digits + 'f' suffix, which
// round-trips any finite f32 exactly through the frontend's
// strtod-then-narrow path.
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "support/rng.hpp"
#include "workloads/generator.hpp"

namespace asipfb::wl {

namespace {

// --- Small emission helpers -------------------------------------------------

/// snprintf into a std::string (arguments are ints/doubles/C strings only).
std::string fmt(const char* f, ...) {
  char buf[256];
  va_list args;
  va_start(args, f);
  std::vsnprintf(buf, sizeof buf, f, args);
  va_end(args);
  return buf;
}

/// A float literal that the BenchC frontend parses back to exactly `v`.
std::string f32lit(float v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", static_cast<double>(v));
  return std::string(buf) + "f";
}

std::string int_array_init(const char* name, const std::vector<std::int32_t>& v) {
  std::string out = fmt("int %s[%d] = { ", name, static_cast<int>(v.size()));
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(v[i]);
  }
  return out + " };\n";
}

std::string float_array_init(const char* name, const std::vector<float>& v) {
  std::string out = fmt("float %s[%d] = { ", name, static_cast<int>(v.size()));
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ", ";
    out += f32lit(v[i]);
  }
  return out + " };\n";
}

// --- Oracle helpers ---------------------------------------------------------

/// Mirrors sim::fp_to_int: truncation with defined out-of-range behaviour.
std::int32_t oracle_fp_to_int(float f) {
  if (std::isnan(f) || f >= 2147483648.0f || f < -2147483648.0f) return 0;
  return static_cast<std::int32_t>(f);
}

std::vector<std::int32_t> words_of(const std::vector<float>& v) {
  std::vector<std::int32_t> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = std::bit_cast<std::int32_t>(v[i]);
  return out;
}

/// Histogram equalization of `in` (values must already lie in [0, levels))
/// exactly as the emitted BenchC stage computes it.
std::vector<std::int32_t> oracle_histeq(const std::vector<std::int32_t>& in,
                                        int levels) {
  std::vector<std::int32_t> hist(static_cast<std::size_t>(levels), 0);
  for (std::int32_t p : in) hist[static_cast<std::size_t>(p)]++;
  std::vector<std::int32_t> cdf(static_cast<std::size_t>(levels), 0);
  std::int32_t cum = 0;
  for (int i = 0; i < levels; ++i) {
    cum += hist[static_cast<std::size_t>(i)];
    cdf[static_cast<std::size_t>(i)] = cum;
  }
  std::int32_t cdf_min = 0;
  for (int i = 0; i < levels; ++i) {
    if (cdf[static_cast<std::size_t>(i)] > 0) {
      cdf_min = cdf[static_cast<std::size_t>(i)];
      break;
    }
  }
  std::int32_t denom = static_cast<std::int32_t>(in.size()) - cdf_min;
  if (denom < 1) denom = 1;
  std::vector<std::int32_t> map(static_cast<std::size_t>(levels), 0);
  for (int i = 0; i < levels; ++i) {
    std::int32_t v = cdf[static_cast<std::size_t>(i)] - cdf_min;
    if (v < 0) v = 0;
    map[static_cast<std::size_t>(i)] = (v * (levels - 1)) / denom;
    if (map[static_cast<std::size_t>(i)] > levels - 1) {
      map[static_cast<std::size_t>(i)] = levels - 1;
    }
  }
  std::vector<std::int32_t> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = map[static_cast<std::size_t>(in[i])];
  }
  return out;
}

/// The shared BenchC histogram-equalization stage over global `in` into
/// global `out` (count elements, `levels` gray levels).  Matches
/// oracle_histeq().  Assumes scalars `i`, `cum`, `cdf_min`, `denom` are
/// free to declare.
std::string emit_histeq_stage(const char* in, const char* out, int count,
                              int levels) {
  std::string s;
  s += fmt("  for (i = 0; i < %d; i++) {\n    hist[i] = 0;\n  }\n", levels);
  s += fmt("  for (i = 0; i < %d; i++) {\n    hist[%s[i]]++;\n  }\n", count, in);
  s += "  int cum = 0;\n";
  s += fmt("  for (i = 0; i < %d; i++) {\n    cum += hist[i];\n    cdf[i] = cum;\n  }\n", levels);
  s += "  int cdf_min = 0;\n";
  s += fmt(
      "  for (i = 0; i < %d; i++) {\n    if (cdf[i] > 0) {\n"
      "      cdf_min = cdf[i];\n      break;\n    }\n  }\n",
      levels);
  s += fmt("  int denom = %d - cdf_min;\n  if (denom < 1) {\n    denom = 1;\n  }\n", count);
  s += fmt(
      "  for (i = 0; i < %d; i++) {\n    int v = cdf[i] - cdf_min;\n"
      "    if (v < 0) {\n      v = 0;\n    }\n"
      "    map[i] = (v * %d) / denom;\n"
      "    if (map[i] > %d) {\n      map[i] = %d;\n    }\n  }\n",
      levels, levels - 1, levels - 1, levels - 1);
  s += fmt("  for (i = 0; i < %d; i++) {\n    %s[i] = map[%s[i]];\n  }\n", count,
           out, in);
  return s;
}

/// Sum-and-store checksum postlude shared by the integer families.
std::string emit_int_checksum(const char* array, int count) {
  std::string s;
  s += "  int s = 0;\n";
  s += fmt("  for (i = 0; i < %d; i++) {\n    s += %s[i];\n  }\n", count, array);
  s += "  checksum = s;\n  return s;\n";
  return s;
}

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(std::string("generator: ") + what);
}

/// The fixed conv2d kernel table (Conv2dParams::kernel indexes it).
struct ConvKernel {
  const char* name;
  std::int32_t w[9];
};
constexpr ConvKernel kConvKernels[kConvKernelCount] = {
    {"sobel_x", {-1, 0, 1, -2, 0, 2, -1, 0, 1}},
    {"sobel_y", {-1, -2, -1, 0, 0, 0, 1, 2, 1}},
    {"laplace", {0, -1, 0, -1, 4, -1, 0, -1, 0}},
    {"gauss", {1, 2, 1, 2, 4, 2, 1, 2, 1}},
    {"box", {1, 1, 1, 1, 1, 1, 1, 1, 1}},
    {"sharpen", {0, -1, 0, -1, 8, -1, 0, -1, 0}},
};

}  // namespace

// --- FIR --------------------------------------------------------------------

Workload make_fir_scenario(const FirParams& p, std::uint64_t data_seed,
                           std::string name) {
  require(p.taps >= 1 && p.taps <= 256, "fir taps out of range");
  require(p.length >= p.taps && p.length <= 4096, "fir length out of range");
  require(p.acc_shift >= 0 && p.acc_shift <= 31, "fir acc_shift out of range");
  require(p.sat_bits == 0 || (p.sat_bits >= 2 && p.sat_bits <= 31),
          "fir sat_bits out of range");

  Workload w;
  w.name = std::move(name);
  Rng rng(data_seed);

  std::string src = fmt("/* %s: generated %d-tap %s FIR over %d samples. */\n",
                        w.name.c_str(), p.taps, p.integer ? "integer" : "float",
                        p.length);
  if (!p.integer) {
    // Float datapath, fir-style.
    const std::vector<float> h = rng.float_array(static_cast<std::size_t>(p.taps),
                                                 -1.0f, 1.0f);
    const std::vector<float> x = rng.float_array(static_cast<std::size_t>(p.length),
                                                 -1.0f, 1.0f);
    src += fmt("float x[%d];\nfloat y[%d];\n", p.length, p.length);
    src += float_array_init("h", h);
    src += "float checksum;\n\nint main() {\n  int n;\n  int k;\n";
    src += fmt("  for (n = 0; n < %d; n++) {\n", p.length);
    src += "    float acc = 0.0;\n";
    src += fmt("    for (k = 0; k < %d; k++) {\n", p.taps);
    src += "      int j = n - k;\n      if (j >= 0) {\n";
    src += "        acc += h[k] * x[j];\n      }\n    }\n";
    src += "    y[n] = acc;\n  }\n";
    src += "  float s = 0.0;\n";
    src += fmt("  for (n = 0; n < %d; n++) {\n    s += y[n];\n  }\n", p.length);
    src += "  checksum = s;\n  return (int)(s * 1000.0);\n}\n";

    // Oracle.
    std::vector<float> y(static_cast<std::size_t>(p.length));
    for (int n = 0; n < p.length; ++n) {
      float acc = 0.0f;
      for (int k = 0; k < p.taps; ++k) {
        const int j = n - k;
        if (j >= 0) {
          acc = acc + h[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(j)];
        }
      }
      y[static_cast<std::size_t>(n)] = acc;
    }
    float s = 0.0f;
    for (int n = 0; n < p.length; ++n) s = s + y[static_cast<std::size_t>(n)];

    w.description = fmt("generated %d-tap float FIR", p.taps);
    w.data_description = fmt("random array of %d floats in [-1,1)", p.length);
    w.input.add("x", x);
    w.outputs = {"y", "checksum"};
    w.expected["y"] = words_of(y);
    w.expected["checksum"] = {std::bit_cast<std::int32_t>(s)};
    w.expected_exit = oracle_fp_to_int(s * 1000.0f);
  } else {
    // Integer datapath, sewha-style: shift-normalized, optionally saturated.
    const std::vector<std::int32_t> h =
        rng.int_array(static_cast<std::size_t>(p.taps), -32, 31);
    const std::vector<std::int32_t> x =
        rng.int_array(static_cast<std::size_t>(p.length), -128, 127);
    const std::int32_t sat_max =
        p.sat_bits > 0 ? (std::int32_t{1} << (p.sat_bits - 1)) - 1 : 0;
    const std::int32_t sat_min = p.sat_bits > 0 ? -(std::int32_t{1} << (p.sat_bits - 1)) : 0;

    src += fmt("int x[%d];\nint y[%d];\n", p.length, p.length);
    src += int_array_init("h", h);
    src += "int checksum;\n\nint main() {\n  int n;\n  int k;\n";
    src += fmt("  for (n = 0; n < %d; n++) {\n", p.length);
    src += "    int acc = 0;\n";
    src += fmt("    for (k = 0; k < %d; k++) {\n", p.taps);
    src += "      int j = n - k;\n      if (j >= 0) {\n";
    src += "        acc += h[k] * x[j];\n      }\n    }\n";
    src += fmt("    acc = acc >> %d;\n", p.acc_shift);
    if (p.sat_bits > 0) {
      src += fmt("    if (acc > %d) {\n      acc = %d;\n    }\n", sat_max, sat_max);
      src += fmt("    if (acc < %d) {\n      acc = %d;\n    }\n", sat_min, sat_min);
    }
    src += "    y[n] = acc;\n  }\n";
    src += "  int i;\n";
    src += emit_int_checksum("y", p.length);
    src += "}\n";

    // Oracle.
    std::vector<std::int32_t> y(static_cast<std::size_t>(p.length));
    for (int n = 0; n < p.length; ++n) {
      std::int32_t acc = 0;
      for (int k = 0; k < p.taps; ++k) {
        const int j = n - k;
        if (j >= 0) {
          acc += h[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(j)];
        }
      }
      acc = acc >> p.acc_shift;
      if (p.sat_bits > 0) {
        if (acc > sat_max) acc = sat_max;
        if (acc < sat_min) acc = sat_min;
      }
      y[static_cast<std::size_t>(n)] = acc;
    }
    std::int32_t s = 0;
    for (int n = 0; n < p.length; ++n) s += y[static_cast<std::size_t>(n)];

    w.description = fmt("generated %d-tap integer FIR (>>%d%s)", p.taps,
                        p.acc_shift,
                        p.sat_bits > 0 ? fmt(", sat %d-bit", p.sat_bits).c_str() : "");
    w.data_description = fmt("stream of %d random integers", p.length);
    w.input.add("x", x);
    w.outputs = {"y", "checksum"};
    w.expected["y"] = y;
    w.expected["checksum"] = {s};
    w.expected_exit = s;
  }
  w.source = src;
  return w;
}

// --- IIR --------------------------------------------------------------------

Workload make_iir_scenario(const IirParams& p, std::uint64_t data_seed,
                           std::string name) {
  require(p.sections >= 1 && p.sections <= 16, "iir sections out of range");
  require(p.length >= 1 && p.length <= 4096, "iir length out of range");

  Workload w;
  w.name = std::move(name);
  Rng rng(data_seed);

  // Stable biquads: poles at radius r in [0.3, 0.85], angle in [0.3, 2.8],
  // so a1 = -2 r cos(theta), a2 = r^2 keep every section bounded.
  const auto sections = static_cast<std::size_t>(p.sections);
  std::vector<float> b0(sections), b1(sections), b2(sections), a1(sections),
      a2(sections);
  for (std::size_t s = 0; s < sections; ++s) {
    const float r = rng.next_float(0.3f, 0.85f);
    const float theta = rng.next_float(0.3f, 2.8f);
    a1[s] = -2.0f * r * std::cos(theta);
    a2[s] = r * r;
    b0[s] = rng.next_float(-0.5f, 0.5f);
    b1[s] = rng.next_float(-0.5f, 0.5f);
    b2[s] = rng.next_float(-0.5f, 0.5f);
  }
  const std::vector<float> x =
      rng.float_array(static_cast<std::size_t>(p.length), -1.0f, 1.0f);

  std::string src =
      fmt("/* %s: generated %d-section IIR biquad cascade over %d samples. */\n",
          w.name.c_str(), p.sections, p.length);
  src += fmt("float x[%d];\nfloat y[%d];\n", p.length, p.length);
  src += float_array_init("b0", b0);
  src += float_array_init("b1", b1);
  src += float_array_init("b2", b2);
  src += float_array_init("a1", a1);
  src += float_array_init("a2", a2);
  src += fmt("float w1[%d];\nfloat w2[%d];\nfloat checksum;\n\n", p.sections,
             p.sections);
  src += "int main() {\n  int n;\n  int s;\n";
  src += fmt(
      "  for (s = 0; s < %d; s++) {\n    w1[s] = 0.0;\n    w2[s] = 0.0;\n  }\n",
      p.sections);
  src += fmt("  for (n = 0; n < %d; n++) {\n", p.length);
  src += "    float v = x[n];\n";
  src += fmt("    for (s = 0; s < %d; s++) {\n", p.sections);
  src += "      float t = v - a1[s] * w1[s] - a2[s] * w2[s];\n";
  src += "      v = b0[s] * t + b1[s] * w1[s] + b2[s] * w2[s];\n";
  src += "      w2[s] = w1[s];\n      w1[s] = t;\n    }\n";
  src += "    y[n] = v;\n  }\n";
  src += "  float acc = 0.0;\n";
  src += fmt("  for (n = 0; n < %d; n++) {\n    acc += y[n] * y[n];\n  }\n",
             p.length);
  src += "  checksum = acc;\n  return (int)(acc * 1000.0);\n}\n";
  w.source = src;

  // Oracle (direct form II, mirrored expression trees).
  std::vector<float> w1(sections, 0.0f), w2(sections, 0.0f);
  std::vector<float> y(static_cast<std::size_t>(p.length));
  for (int n = 0; n < p.length; ++n) {
    float v = x[static_cast<std::size_t>(n)];
    for (std::size_t s = 0; s < sections; ++s) {
      const float t = v - a1[s] * w1[s] - a2[s] * w2[s];
      v = b0[s] * t + b1[s] * w1[s] + b2[s] * w2[s];
      w2[s] = w1[s];
      w1[s] = t;
    }
    y[static_cast<std::size_t>(n)] = v;
  }
  float acc = 0.0f;
  for (int n = 0; n < p.length; ++n) {
    acc = acc + y[static_cast<std::size_t>(n)] * y[static_cast<std::size_t>(n)];
  }

  w.description = fmt("generated %d-section IIR biquad cascade", p.sections);
  w.data_description = fmt("random array of %d floats in [-1,1)", p.length);
  w.input.add("x", x);
  w.outputs = {"y", "checksum"};
  w.expected["y"] = words_of(y);
  w.expected["checksum"] = {std::bit_cast<std::int32_t>(acc)};
  w.expected_exit = oracle_fp_to_int(acc * 1000.0f);
  return w;
}

// --- DFT --------------------------------------------------------------------

Workload make_dft_scenario(const DftParams& p, std::uint64_t data_seed,
                           std::string name) {
  require(p.points >= 2 && p.points <= 256, "dft points out of range");

  Workload w;
  w.name = std::move(name);
  Rng rng(data_seed);
  const int K = p.points;
  const float omega = static_cast<float>(6.283185307179586 / K);  // 2*pi/K
  const std::vector<std::int32_t> x =
      rng.int_array(static_cast<std::size_t>(K), -128, 127);

  std::string src = fmt("/* %s: generated direct %d-point DFT. */\n",
                        w.name.c_str(), K);
  src += fmt("int x[%d];\nfloat xr[%d];\nfloat xi[%d];\nfloat checksum;\n\n", K,
             K, K);
  src += "int main() {\n  int k;\n  int n;\n";
  src += fmt("  for (k = 0; k < %d; k++) {\n", K);
  src += "    float sr = 0.0;\n    float si = 0.0;\n";
  src += fmt("    for (n = 0; n < %d; n++) {\n", K);
  src += fmt("      float a = %s * (k * n);\n", f32lit(omega).c_str());
  src += "      sr += x[n] * cosf(a);\n";
  src += "      si -= x[n] * sinf(a);\n    }\n";
  src += "    xr[k] = sr;\n    xi[k] = si;\n  }\n";
  src += "  float s = 0.0;\n";
  src += fmt(
      "  for (k = 0; k < %d; k++) {\n    s += xr[k] * xr[k] + xi[k] * xi[k];\n  }\n",
      K);
  src += "  checksum = s;\n  return (int)(s * 0.000001);\n}\n";
  w.source = src;

  // Oracle: int->float promotion, then the same f32 tree per statement.
  std::vector<float> xr(static_cast<std::size_t>(K)), xi(static_cast<std::size_t>(K));
  for (int k = 0; k < K; ++k) {
    float sr = 0.0f;
    float si = 0.0f;
    for (int n = 0; n < K; ++n) {
      const float a = omega * static_cast<float>(k * n);
      sr = sr + static_cast<float>(x[static_cast<std::size_t>(n)]) * std::cos(a);
      si = si - static_cast<float>(x[static_cast<std::size_t>(n)]) * std::sin(a);
    }
    xr[static_cast<std::size_t>(k)] = sr;
    xi[static_cast<std::size_t>(k)] = si;
  }
  float s = 0.0f;
  for (int k = 0; k < K; ++k) {
    s = s + (xr[static_cast<std::size_t>(k)] * xr[static_cast<std::size_t>(k)] +
             xi[static_cast<std::size_t>(k)] * xi[static_cast<std::size_t>(k)]);
  }

  w.description = fmt("generated direct %d-point DFT", K);
  w.data_description = fmt("stream of %d random integers", K);
  w.input.add("x", x);
  w.outputs = {"xr", "xi", "checksum"};
  w.expected["xr"] = words_of(xr);
  w.expected["xi"] = words_of(xi);
  w.expected["checksum"] = {std::bit_cast<std::int32_t>(s)};
  w.expected_exit = oracle_fp_to_int(s * 0.000001f);
  return w;
}

// --- Conv2d -----------------------------------------------------------------

Workload make_conv2d_scenario(const Conv2dParams& p, std::uint64_t data_seed,
                              std::string name) {
  require(p.width >= 4 && p.width <= 128, "conv2d width out of range");
  require(p.height >= 4 && p.height <= 128, "conv2d height out of range");
  require(p.kernel >= 0 && p.kernel < kConvKernelCount, "conv2d kernel out of range");
  require(p.shift >= 0 && p.shift <= 15, "conv2d shift out of range");
  require(p.thresh >= 0, "conv2d thresh out of range");

  Workload w;
  w.name = std::move(name);
  Rng rng(data_seed);
  const int W = p.width, H = p.height, WH = W * H;
  const ConvKernel& kernel = kConvKernels[p.kernel];
  const std::vector<std::int32_t> img =
      rng.image8(static_cast<std::size_t>(W), static_cast<std::size_t>(H));

  std::string src = fmt(
      "/* %s: generated 3x3 %s convolution over a %dx%d 8-bit image (%s). */\n",
      w.name.c_str(), kernel.name, W, H,
      p.threshold ? "abs+threshold" : "shift+clamp");
  src += fmt("int img[%d];\nint out[%d];\n", WH, WH);
  src += int_array_init("kw", std::vector<std::int32_t>(kernel.w, kernel.w + 9));
  src += "int checksum;\n\nint main() {\n  int i;\n";
  src += fmt("  for (i = 0; i < %d; i++) {\n    out[i] = 0;\n  }\n", WH);
  src += "  int r;\n  int c;\n  int dr;\n  int dc;\n";
  src += fmt("  for (r = 1; r < %d; r++) {\n", H - 1);
  src += fmt("    for (c = 1; c < %d; c++) {\n", W - 1);
  src += "      int acc = 0;\n";
  src += "      for (dr = -1; dr <= 1; dr++) {\n";
  src += "        for (dc = -1; dc <= 1; dc++) {\n";
  src += fmt("          acc += kw[(dr + 1) * 3 + dc + 1] * img[(r + dr) * %d + c + dc];\n", W);
  src += "        }\n      }\n";
  if (p.threshold) {
    src += "      int m = abs(acc);\n      int e = 0;\n";
    src += fmt("      if (m > %d) {\n        e = 255;\n      }\n", p.thresh);
    src += fmt("      out[r * %d + c] = e;\n", W);
  } else {
    src += fmt("      int v = acc >> %d;\n", p.shift);
    src += "      if (v > 255) {\n        v = 255;\n      }\n";
    src += "      if (v < 0) {\n        v = 0;\n      }\n";
    src += fmt("      out[r * %d + c] = v;\n", W);
  }
  src += "    }\n  }\n";
  src += emit_int_checksum("out", WH);
  src += "}\n";
  w.source = src;

  // Oracle.
  std::vector<std::int32_t> out(static_cast<std::size_t>(WH), 0);
  for (int r = 1; r < H - 1; ++r) {
    for (int c = 1; c < W - 1; ++c) {
      std::int32_t acc = 0;
      for (int dr = -1; dr <= 1; ++dr) {
        for (int dc = -1; dc <= 1; ++dc) {
          acc += kernel.w[(dr + 1) * 3 + dc + 1] *
                 img[static_cast<std::size_t>((r + dr) * W + c + dc)];
        }
      }
      std::int32_t result;
      if (p.threshold) {
        result = std::abs(acc) > p.thresh ? 255 : 0;
      } else {
        result = acc >> p.shift;
        if (result > 255) result = 255;
        if (result < 0) result = 0;
      }
      out[static_cast<std::size_t>(r * W + c)] = result;
    }
  }
  std::int32_t s = 0;
  for (std::int32_t v : out) s += v;

  w.description = fmt("generated 3x3 %s convolution (%s)", kernel.name,
                      p.threshold ? "edge-style" : "smooth-style");
  w.data_description = fmt("%dx%d 8-bit image", W, H);
  w.input.add("img", img);
  w.outputs = {"out", "checksum"};
  w.expected["out"] = out;
  w.expected["checksum"] = {s};
  w.expected_exit = s;
  return w;
}

// --- HistEq -----------------------------------------------------------------

Workload make_histeq_scenario(const HistEqParams& p, std::uint64_t data_seed,
                              std::string name) {
  require(p.width >= 1 && p.width <= 128, "histeq width out of range");
  require(p.height >= 1 && p.height <= 128, "histeq height out of range");
  require(p.levels >= 2 && p.levels <= 256, "histeq levels out of range");

  Workload w;
  w.name = std::move(name);
  Rng rng(data_seed);
  const int WH = p.width * p.height;
  const std::vector<std::int32_t> img =
      rng.int_array(static_cast<std::size_t>(WH), 0, p.levels - 1);

  std::string src = fmt(
      "/* %s: generated histogram equalization of a %dx%d image, %d levels. */\n",
      w.name.c_str(), p.width, p.height, p.levels);
  src += fmt("int img[%d];\nint out[%d];\n", WH, WH);
  src += fmt("int hist[%d];\nint cdf[%d];\nint map[%d];\nint checksum;\n\n",
             p.levels, p.levels, p.levels);
  src += "int main() {\n  int i;\n";
  src += emit_histeq_stage("img", "out", WH, p.levels);
  src += emit_int_checksum("out", WH);
  src += "}\n";
  w.source = src;

  const std::vector<std::int32_t> out = oracle_histeq(img, p.levels);
  std::int32_t s = 0;
  for (std::int32_t v : out) s += v;

  w.description = fmt("generated histogram equalization (%d levels)", p.levels);
  w.data_description = fmt("%dx%d image, pixels in [0,%d]", p.width, p.height,
                           p.levels - 1);
  w.input.add("img", img);
  w.outputs = {"out", "checksum"};
  w.expected["out"] = out;
  w.expected["checksum"] = {s};
  w.expected_exit = s;
  return w;
}

// --- Fused pipelines --------------------------------------------------------

Workload make_fused_scenario(const FusedParams& p, std::uint64_t data_seed,
                             std::string name) {
  Workload w;
  w.name = std::move(name);
  Rng rng(data_seed);

  if (!p.image) {
    // Stream pipeline: integer FIR -> saturate to [0,255] -> equalize.
    require(p.taps >= 1 && p.taps <= 256, "fused taps out of range");
    require(p.length >= p.taps && p.length <= 4096, "fused length out of range");
    const std::vector<std::int32_t> h =
        rng.int_array(static_cast<std::size_t>(p.taps), 0, 15);
    const std::vector<std::int32_t> x =
        rng.int_array(static_cast<std::size_t>(p.length), 0, 255);
    // Normalize so a full-overlap accumulator lands near the 8-bit range:
    // acc <= 255 * sum(h), so shift by ceil(log2(sum(h))) (>= 0).
    std::int32_t hsum = 0;
    for (std::int32_t v : h) hsum += v;
    int shift = 0;
    while ((std::int32_t{1} << shift) < hsum) ++shift;

    std::string src = fmt(
        "/* %s: generated fused pipeline: %d-tap FIR -> saturate -> "
        "histogram equalization over %d samples. */\n",
        w.name.c_str(), p.taps, p.length);
    src += fmt("int x[%d];\nint y[%d];\nint out[%d];\n", p.length, p.length,
               p.length);
    src += int_array_init("h", h);
    src += "int hist[256];\nint cdf[256];\nint map[256];\nint checksum;\n\n";
    src += "int main() {\n  int n;\n  int k;\n";
    src += fmt("  for (n = 0; n < %d; n++) {\n", p.length);
    src += "    int acc = 0;\n";
    src += fmt("    for (k = 0; k < %d; k++) {\n", p.taps);
    src += "      int j = n - k;\n      if (j >= 0) {\n";
    src += "        acc += h[k] * x[j];\n      }\n    }\n";
    src += fmt("    acc = acc >> %d;\n", shift);
    src += "    if (acc > 255) {\n      acc = 255;\n    }\n";
    src += "    if (acc < 0) {\n      acc = 0;\n    }\n";
    src += "    y[n] = acc;\n  }\n";
    src += "  int i;\n";
    src += emit_histeq_stage("y", "out", p.length, 256);
    src += emit_int_checksum("out", p.length);
    src += "}\n";
    w.source = src;

    // Oracle.
    std::vector<std::int32_t> y(static_cast<std::size_t>(p.length));
    for (int n = 0; n < p.length; ++n) {
      std::int32_t acc = 0;
      for (int k = 0; k < p.taps; ++k) {
        const int j = n - k;
        if (j >= 0) {
          acc += h[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(j)];
        }
      }
      acc = acc >> shift;
      if (acc > 255) acc = 255;
      if (acc < 0) acc = 0;
      y[static_cast<std::size_t>(n)] = acc;
    }
    const std::vector<std::int32_t> out = oracle_histeq(y, 256);
    std::int32_t s = 0;
    for (std::int32_t v : out) s += v;

    w.description = fmt("generated fused %d-tap FIR -> histogram equalization",
                        p.taps);
    w.data_description = fmt("stream of %d random 8-bit samples", p.length);
    w.input.add("x", x);
    w.outputs = {"y", "out", "checksum"};
    w.expected["y"] = y;
    w.expected["out"] = out;
    w.expected["checksum"] = {s};
    w.expected_exit = s;
  } else {
    // Image pipeline: gaussian smooth (border copy) -> equalize.
    require(p.width >= 4 && p.width <= 128, "fused width out of range");
    require(p.height >= 4 && p.height <= 128, "fused height out of range");
    const int W = p.width, H = p.height, WH = W * H;
    const std::vector<std::int32_t> img =
        rng.image8(static_cast<std::size_t>(W), static_cast<std::size_t>(H));
    const ConvKernel& kernel = kConvKernels[3];  // gauss, weight sum 16.

    std::string src = fmt(
        "/* %s: generated fused pipeline: 3x3 gaussian smooth -> histogram "
        "equalization over a %dx%d image. */\n",
        w.name.c_str(), W, H);
    src += fmt("int img[%d];\nint tmp[%d];\nint out[%d];\n", WH, WH, WH);
    src += int_array_init("kw", std::vector<std::int32_t>(kernel.w, kernel.w + 9));
    src += "int hist[256];\nint cdf[256];\nint map[256];\nint checksum;\n\n";
    src += "int main() {\n  int i;\n";
    src += fmt("  for (i = 0; i < %d; i++) {\n    tmp[i] = img[i];\n  }\n", WH);
    src += "  int r;\n  int c;\n  int dr;\n  int dc;\n";
    src += fmt("  for (r = 1; r < %d; r++) {\n", H - 1);
    src += fmt("    for (c = 1; c < %d; c++) {\n", W - 1);
    src += "      int acc = 0;\n";
    src += "      for (dr = -1; dr <= 1; dr++) {\n";
    src += "        for (dc = -1; dc <= 1; dc++) {\n";
    src += fmt("          acc += kw[(dr + 1) * 3 + dc + 1] * img[(r + dr) * %d + c + dc];\n", W);
    src += "        }\n      }\n";
    src += "      int v = acc >> 4;\n";
    src += "      if (v > 255) {\n        v = 255;\n      }\n";
    src += fmt("      tmp[r * %d + c] = v;\n", W);
    src += "    }\n  }\n";
    src += emit_histeq_stage("tmp", "out", WH, 256);
    src += emit_int_checksum("out", WH);
    src += "}\n";
    w.source = src;

    // Oracle.
    std::vector<std::int32_t> tmp = img;
    for (int r = 1; r < H - 1; ++r) {
      for (int c = 1; c < W - 1; ++c) {
        std::int32_t acc = 0;
        for (int dr = -1; dr <= 1; ++dr) {
          for (int dc = -1; dc <= 1; ++dc) {
            acc += kernel.w[(dr + 1) * 3 + dc + 1] *
                   img[static_cast<std::size_t>((r + dr) * W + c + dc)];
          }
        }
        std::int32_t v = acc >> 4;
        if (v > 255) v = 255;
        tmp[static_cast<std::size_t>(r * W + c)] = v;
      }
    }
    const std::vector<std::int32_t> out = oracle_histeq(tmp, 256);
    std::int32_t s = 0;
    for (std::int32_t v : out) s += v;

    w.description = "generated fused gaussian smooth -> histogram equalization";
    w.data_description = fmt("%dx%d 8-bit image", W, H);
    w.input.add("img", img);
    w.outputs = {"tmp", "out", "checksum"};
    w.expected["tmp"] = tmp;
    w.expected["out"] = out;
    w.expected["checksum"] = {s};
    w.expected_exit = s;
  }
  return w;
}

// --- RLE (quantize + run-length codec) --------------------------------------
// Control-heavy by construction: the quantizer is an if/else-if threshold
// chain taken per sample, the encoder's inner scan runs until the data
// changes (an irregular, data-dependent trip count ended by `break`), and
// the decoder's inner loop bound is the runtime-computed run length.

Workload make_rle_scenario(const RleParams& p, std::uint64_t data_seed,
                           std::string name) {
  require(p.length >= 2 && p.length <= 4096, "rle length out of range");
  require(p.levels >= 2 && p.levels <= 8, "rle levels out of range");

  Workload w;
  w.name = std::move(name);
  Rng rng(data_seed);
  const int N = p.length;
  const int L = p.levels;

  // Evenly spaced thresholds over the sample range [-128, 127]: values in
  // (thresh[k-1], thresh[k]] quantize to bucket k.
  std::vector<std::int32_t> thresh(static_cast<std::size_t>(L - 1));
  for (int k = 0; k < L - 1; ++k) {
    thresh[static_cast<std::size_t>(k)] = -128 + ((k + 1) * 256) / L;
  }
  // Runs of geometric-ish length so the encoder sees both long runs and
  // single-sample runs: each sample repeats the previous one with
  // probability ~3/4.
  std::vector<std::int32_t> x(static_cast<std::size_t>(N));
  std::int32_t current = rng.next_int(-128, 127);
  for (int i = 0; i < N; ++i) {
    if (rng.next_below(4) == 0) current = rng.next_int(-128, 127);
    x[static_cast<std::size_t>(i)] = current;
  }

  std::string src = fmt(
      "/* %s: generated quantize + run-length codec, %d samples, %d levels. */\n",
      w.name.c_str(), N, L);
  src += fmt("int x[%d];\nint q[%d];\nint runval[%d];\nint runlen[%d];\nint dec[%d];\n",
             N, N, N, N, N);
  src += "int nruns;\nint checksum;\n\nint main() {\n  int i;\n";
  src += fmt("  for (i = 0; i < %d; i++) {\n", N);
  src += "    runval[i] = 0;\n    runlen[i] = 0;\n    dec[i] = 0;\n  }\n";
  // Quantize: data-dependent threshold chain.
  src += fmt("  for (i = 0; i < %d; i++) {\n", N);
  src += "    int v = x[i];\n    int lvl = 0;\n";
  for (int k = 0; k < L - 1; ++k) {
    src += fmt("    if (v > %d) {\n      lvl = %d;\n    }\n",
               thresh[static_cast<std::size_t>(k)], k + 1);
  }
  src += "    q[i] = lvl;\n  }\n";
  // Encode: inner while scans the current run; trip count is data-dependent.
  src += "  int n = 0;\n  i = 0;\n";
  src += fmt("  while (i < %d) {\n", N);
  src += "    int v = q[i];\n    int len = 1;\n";
  src += fmt("    while (i + len < %d) {\n", N);
  src += "      if (q[i + len] != v) {\n        break;\n      }\n";
  src += "      len++;\n    }\n";
  src += "    runval[n] = v;\n    runlen[n] = len;\n    n++;\n    i += len;\n  }\n";
  src += "  nruns = n;\n";
  // Decode: inner loop bound is the runtime-computed run length.
  src += "  int r;\n  int k;\n  int pos = 0;\n";
  src += "  for (r = 0; r < n; r++) {\n";
  src += "    for (k = 0; k < runlen[r]; k++) {\n";
  src += "      dec[pos] = runval[r];\n      pos++;\n    }\n  }\n";
  // Verify + checksum; the else branch only fires on a codec bug.
  src += "  int s = 0;\n";
  src += fmt("  for (i = 0; i < %d; i++) {\n", N);
  src += "    if (dec[i] == q[i]) {\n      s += dec[i] + 1;\n    } else {\n";
  src += "      s -= 1000;\n    }\n  }\n";
  src += "  checksum = s;\n  return s;\n}\n";
  w.source = src;

  // Oracle, statement by statement.
  std::vector<std::int32_t> q(static_cast<std::size_t>(N));
  for (int i = 0; i < N; ++i) {
    const std::int32_t v = x[static_cast<std::size_t>(i)];
    std::int32_t lvl = 0;
    for (int k = 0; k < L - 1; ++k) {
      if (v > thresh[static_cast<std::size_t>(k)]) lvl = k + 1;
    }
    q[static_cast<std::size_t>(i)] = lvl;
  }
  std::vector<std::int32_t> runval(static_cast<std::size_t>(N), 0);
  std::vector<std::int32_t> runlen(static_cast<std::size_t>(N), 0);
  std::int32_t n = 0;
  {
    int i = 0;
    while (i < N) {
      const std::int32_t v = q[static_cast<std::size_t>(i)];
      std::int32_t len = 1;
      while (i + len < N) {
        if (q[static_cast<std::size_t>(i + len)] != v) break;
        ++len;
      }
      runval[static_cast<std::size_t>(n)] = v;
      runlen[static_cast<std::size_t>(n)] = len;
      ++n;
      i += len;
    }
  }
  std::vector<std::int32_t> dec(static_cast<std::size_t>(N), 0);
  {
    int pos = 0;
    for (int r = 0; r < n; ++r) {
      for (int k = 0; k < runlen[static_cast<std::size_t>(r)]; ++k) {
        dec[static_cast<std::size_t>(pos)] = runval[static_cast<std::size_t>(r)];
        ++pos;
      }
    }
  }
  std::int32_t s = 0;
  for (int i = 0; i < N; ++i) {
    if (dec[static_cast<std::size_t>(i)] == q[static_cast<std::size_t>(i)]) {
      s += dec[static_cast<std::size_t>(i)] + 1;
    } else {
      s -= 1000;
    }
  }

  w.description = fmt("generated quantize + run-length codec (%d levels)", L);
  w.data_description = fmt("run-structured stream of %d random samples", N);
  w.input.add("x", x);
  w.outputs = {"q", "runval", "runlen", "dec", "nruns", "checksum"};
  w.expected["q"] = q;
  w.expected["runval"] = runval;
  w.expected["runlen"] = runlen;
  w.expected["dec"] = dec;
  w.expected["nruns"] = {n};
  w.expected["checksum"] = {s};
  w.expected_exit = s;
  return w;
}

// --- Calls (multi-function tiled statistics) --------------------------------
// A three-deep call graph (main -> tile_stat -> region_sum, plus a clamp
// helper used from two sites) over nested loops whose bounds — the tile
// side — are computed at runtime from the image data itself.

Workload make_calls_scenario(const CallsParams& p, std::uint64_t data_seed,
                             std::string name) {
  require(p.width >= 4 && p.width <= 64, "calls width out of range");
  require(p.height >= 4 && p.height <= 64, "calls height out of range");
  require(p.tile_base >= 2 && p.tile_base <= 8, "calls tile_base out of range");
  require(p.bias >= -64 && p.bias <= 64, "calls bias out of range");

  Workload w;
  w.name = std::move(name);
  Rng rng(data_seed);
  const int W = p.width, H = p.height, WH = W * H;
  const int max_tiles = (W / 2) * (H / 2);  // Smallest legal tile side is 2.
  const std::vector<std::int32_t> img =
      rng.image8(static_cast<std::size_t>(W), static_cast<std::size_t>(H));

  std::string src = fmt(
      "/* %s: generated tiled image statistics over a %dx%d image through a\n"
      "   multi-function call graph; tile side computed from the data. */\n",
      w.name.c_str(), W, H);
  src += fmt("int img[%d];\nint out[%d];\nint tilemean[%d];\n", WH, WH, max_tiles);
  src += "int ntiles;\nint checksum;\n\n";
  src += "int clampv(int v, int lo, int hi) {\n";
  src += "  if (v < lo) {\n    return lo;\n  }\n";
  src += "  if (v > hi) {\n    return hi;\n  }\n";
  src += "  return v;\n}\n\n";
  src += "int region_sum(int r0, int c0, int rh, int cw) {\n";
  src += "  int r;\n  int c;\n  int s = 0;\n";
  src += "  for (r = r0; r < r0 + rh; r++) {\n";
  src += "    for (c = c0; c < c0 + cw; c++) {\n";
  src += fmt("      s += img[r * %d + c];\n", W);
  src += "    }\n  }\n  return s;\n}\n\n";
  src += "int tile_stat(int t, int tr, int tc, int side) {\n";
  src += "  int s = region_sum(tr, tc, side, side);\n";
  src += "  int mean = s / (side * side);\n";
  src += "  tilemean[t] = clampv(mean, 0, 255);\n";
  src += "  return tilemean[t];\n}\n\n";
  src += "int main() {\n  int i;\n";
  src += fmt("  for (i = 0; i < %d; i++) {\n    out[i] = img[i];\n  }\n", WH);
  // Runtime-computed tile side: the loop bounds below depend on the data.
  src += fmt("  int side = %d + (img[0] & 3);\n", p.tile_base);
  src += fmt("  if (side > %d) {\n    side = %d;\n  }\n", std::min(W, H),
             std::min(W, H));
  src += "  int t = 0;\n  int tr;\n  int tc;\n";
  src += fmt("  for (tr = 0; tr + side <= %d; tr += side) {\n", H);
  src += fmt("    for (tc = 0; tc + side <= %d; tc += side) {\n", W);
  src += "      int m = tile_stat(t, tr, tc, side);\n";
  src += "      int r;\n      int c;\n";
  src += "      for (r = tr; r < tr + side; r++) {\n";
  src += "        for (c = tc; c < tc + side; c++) {\n";
  src += fmt("          out[r * %d + c] = clampv(img[r * %d + c] - m + %d, 0, 255);\n",
             W, W, 128 + p.bias);
  src += "        }\n      }\n      t++;\n    }\n  }\n";
  src += "  ntiles = t;\n";
  src += emit_int_checksum("out", WH);
  src += "}\n";
  w.source = src;

  // Oracle, statement by statement.
  const auto clampv = [](std::int32_t v, std::int32_t lo, std::int32_t hi) {
    if (v < lo) return lo;
    if (v > hi) return hi;
    return v;
  };
  std::vector<std::int32_t> out = img;
  std::vector<std::int32_t> tilemean(static_cast<std::size_t>(max_tiles), 0);
  std::int32_t side = p.tile_base + (img[0] & 3);
  if (side > std::min(W, H)) side = std::min(W, H);
  std::int32_t t = 0;
  for (int tr = 0; tr + side <= H; tr += side) {
    for (int tc = 0; tc + side <= W; tc += side) {
      std::int32_t sum = 0;
      for (int r = tr; r < tr + side; ++r) {
        for (int c = tc; c < tc + side; ++c) {
          sum += img[static_cast<std::size_t>(r * W + c)];
        }
      }
      const std::int32_t mean = sum / (side * side);
      tilemean[static_cast<std::size_t>(t)] = clampv(mean, 0, 255);
      const std::int32_t m = tilemean[static_cast<std::size_t>(t)];
      for (int r = tr; r < tr + side; ++r) {
        for (int c = tc; c < tc + side; ++c) {
          out[static_cast<std::size_t>(r * W + c)] =
              clampv(img[static_cast<std::size_t>(r * W + c)] - m + 128 + p.bias,
                     0, 255);
        }
      }
      ++t;
    }
  }
  std::int32_t s = 0;
  for (std::int32_t v : out) s += v;

  w.description = fmt("generated tiled statistics via call graph (base side %d)",
                      p.tile_base);
  w.data_description = fmt("%dx%d 8-bit image", W, H);
  w.input.add("img", img);
  w.outputs = {"out", "tilemean", "ntiles", "checksum"};
  w.expected["out"] = out;
  w.expected["tilemean"] = tilemean;
  w.expected["ntiles"] = {t};
  w.expected["checksum"] = {s};
  w.expected_exit = s;
  return w;
}

// --- FFT (fixed-point radix-2) ----------------------------------------------
// Iterative decimation-in-time FFT on an integer datapath: bit-reversal
// permutation with the while-loop carry idiom, Q`qbits` twiddle tables
// baked into the source, and >>1 scaling per stage so every intermediate
// stays well inside i32.  Integer-only, so the oracle is exact without any
// floating-point contract.

Workload make_fft_scenario(const FftParams& p, std::uint64_t data_seed,
                           std::string name) {
  require(p.points >= 4 && p.points <= 256, "fft points out of range");
  require((p.points & (p.points - 1)) == 0, "fft points must be a power of two");
  require(p.qbits >= 8 && p.qbits <= 14, "fft qbits out of range");

  Workload w;
  w.name = std::move(name);
  Rng rng(data_seed);
  const int P = p.points;
  const int Q = p.qbits;
  const std::int32_t one = std::int32_t{1} << Q;
  const std::vector<std::int32_t> x =
      rng.int_array(static_cast<std::size_t>(P), -128, 127);

  // Forward twiddles W_P^k = e^{-2 pi i k / P} in Q`qbits` fixed point.
  std::vector<std::int32_t> wr(static_cast<std::size_t>(P / 2));
  std::vector<std::int32_t> wi(static_cast<std::size_t>(P / 2));
  for (int k = 0; k < P / 2; ++k) {
    const double ang = -6.283185307179586 * k / P;
    wr[static_cast<std::size_t>(k)] =
        static_cast<std::int32_t>(std::lround(std::cos(ang) * one));
    wi[static_cast<std::size_t>(k)] =
        static_cast<std::int32_t>(std::lround(std::sin(ang) * one));
  }

  std::string src = fmt(
      "/* %s: generated fixed-point radix-2 %d-point FFT (Q%d twiddles%s). */\n",
      w.name.c_str(), P, Q, p.window ? ", windowed" : "");
  src += fmt("int x[%d];\nint re[%d];\nint im[%d];\nint pw[%d];\n", P, P, P, P);
  src += int_array_init("wr", wr);
  src += int_array_init("wi", wi);
  src += "int checksum;\n\nint main() {\n  int i;\n";
  if (p.window) {
    // Triangular integer window scaled back by Q-ish shift; windowed
    // samples stay within the input range.
    src += fmt("  for (i = 0; i < %d; i++) {\n", P);
    src += fmt("    int tri = i;\n    if (i >= %d) {\n      tri = %d - i;\n    }\n",
               P / 2, P - 1);
    src += fmt("    re[i] = (x[i] * (tri + 1)) / %d;\n", P / 2);
    src += "    im[i] = 0;\n  }\n";
  } else {
    src += fmt("  for (i = 0; i < %d; i++) {\n    re[i] = x[i];\n    im[i] = 0;\n  }\n",
               P);
  }
  // Bit-reversal permutation (intfft's while-carry idiom).
  src += "  int j = 0;\n";
  src += fmt("  for (i = 0; i < %d; i++) {\n", P - 1);
  src += "    if (i < j) {\n";
  src += "      int tr = re[i];\n      re[i] = re[j];\n      re[j] = tr;\n";
  src += "      int ti = im[i];\n      im[i] = im[j];\n      im[j] = ti;\n    }\n";
  src += fmt("    int k = %d;\n", P >> 1);
  src += "    while (k <= j) {\n      j -= k;\n      k >>= 1;\n    }\n";
  src += "    j += k;\n  }\n";
  // Butterfly stages with >>1 scaling.
  src += "  int len;\n";
  src += fmt("  for (len = 2; len <= %d; len <<= 1) {\n", P);
  src += "    int half = len >> 1;\n";
  src += fmt("    int step = %d / len;\n", P);
  src += "    int base;\n";
  src += fmt("    for (base = 0; base < %d; base += len) {\n", P);
  src += "      int q;\n";
  src += "      for (q = 0; q < half; q++) {\n";
  src += "        int a = base + q;\n        int b = a + half;\n";
  src += "        int widx = q * step;\n";
  src += fmt("        int tr = (wr[widx] * re[b] - wi[widx] * im[b]) >> %d;\n", Q);
  src += fmt("        int ti = (wr[widx] * im[b] + wi[widx] * re[b]) >> %d;\n", Q);
  src += "        int ur = re[a];\n        int ui = im[a];\n";
  src += "        re[b] = (ur - tr) >> 1;\n        im[b] = (ui - ti) >> 1;\n";
  src += "        re[a] = (ur + tr) >> 1;\n        im[a] = (ui + ti) >> 1;\n";
  src += "      }\n    }\n  }\n";
  // Power spectrum + checksum.
  src += fmt("  for (i = 0; i < %d; i++) {\n", P);
  src += "    pw[i] = re[i] * re[i] + im[i] * im[i];\n  }\n";
  src += emit_int_checksum("pw", P);
  src += "}\n";
  w.source = src;

  // Oracle, statement by statement.
  std::vector<std::int32_t> re(static_cast<std::size_t>(P));
  std::vector<std::int32_t> im(static_cast<std::size_t>(P), 0);
  for (int i = 0; i < P; ++i) {
    if (p.window) {
      std::int32_t tri = i;
      if (i >= P / 2) tri = (P - 1) - i;
      re[static_cast<std::size_t>(i)] =
          (x[static_cast<std::size_t>(i)] * (tri + 1)) / (P / 2);
    } else {
      re[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i)];
    }
  }
  {
    std::int32_t j = 0;
    for (int i = 0; i < P - 1; ++i) {
      if (i < j) {
        std::swap(re[static_cast<std::size_t>(i)], re[static_cast<std::size_t>(j)]);
        std::swap(im[static_cast<std::size_t>(i)], im[static_cast<std::size_t>(j)]);
      }
      std::int32_t k = P >> 1;
      while (k <= j) {
        j -= k;
        k >>= 1;
      }
      j += k;
    }
  }
  for (int len = 2; len <= P; len <<= 1) {
    const int half = len >> 1;
    const int step = P / len;
    for (int base = 0; base < P; base += len) {
      for (int q = 0; q < half; ++q) {
        const int a = base + q;
        const int b = a + half;
        const int widx = q * step;
        const std::int32_t tr =
            (wr[static_cast<std::size_t>(widx)] * re[static_cast<std::size_t>(b)] -
             wi[static_cast<std::size_t>(widx)] * im[static_cast<std::size_t>(b)]) >> Q;
        const std::int32_t ti =
            (wr[static_cast<std::size_t>(widx)] * im[static_cast<std::size_t>(b)] +
             wi[static_cast<std::size_t>(widx)] * re[static_cast<std::size_t>(b)]) >> Q;
        const std::int32_t ur = re[static_cast<std::size_t>(a)];
        const std::int32_t ui = im[static_cast<std::size_t>(a)];
        re[static_cast<std::size_t>(b)] = (ur - tr) >> 1;
        im[static_cast<std::size_t>(b)] = (ui - ti) >> 1;
        re[static_cast<std::size_t>(a)] = (ur + tr) >> 1;
        im[static_cast<std::size_t>(a)] = (ui + ti) >> 1;
      }
    }
  }
  std::vector<std::int32_t> pw(static_cast<std::size_t>(P));
  for (int i = 0; i < P; ++i) {
    pw[static_cast<std::size_t>(i)] =
        re[static_cast<std::size_t>(i)] * re[static_cast<std::size_t>(i)] +
        im[static_cast<std::size_t>(i)] * im[static_cast<std::size_t>(i)];
  }
  std::int32_t s = 0;
  for (std::int32_t v : pw) s += v;

  w.description = fmt("generated fixed-point %d-point FFT (Q%d)", P, Q);
  w.data_description = fmt("stream of %d random integers", P);
  w.input.add("x", x);
  w.outputs = {"re", "im", "pw", "checksum"};
  w.expected["re"] = re;
  w.expected["im"] = im;
  w.expected["pw"] = pw;
  w.expected["checksum"] = {s};
  w.expected_exit = s;
  return w;
}

}  // namespace asipfb::wl
