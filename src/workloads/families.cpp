// Family emitters for the generated corpus (generator.hpp): each function
// renders one parameterized BenchC program *and* computes its reference
// outputs with a plain-C++ oracle that mirrors the emitted program
// statement by statement.
//
// Bit-exactness contract: the oracle must reproduce the simulator's
// results word for word, so
//   * float arithmetic follows the emitted expression trees exactly, one
//     individually rounded f32 operation per BenchC operation (this file
//     is compiled with -ffp-contract=off — see CMakeLists.txt — so the
//     compiler cannot fuse a*b+c into an FMA the simulator would not
//     perform);
//   * intrinsics call the same libm float overloads the simulator's
//     Intrin opcode calls (std::cos/std::sin on float);
//   * float->int casts replicate sim::fp_to_int (NaN and out-of-range
//     map to 0);
//   * integer ops stay inside i32 ranges by construction (bounded taps,
//     coefficients, and inputs), so C++ signed arithmetic is defined and
//     agrees with the simulator's wrapping u32 ops.
// Emitted float literals use 9 significant digits + 'f' suffix, which
// round-trips any finite f32 exactly through the frontend's
// strtod-then-narrow path.
#include <bit>
#include <cmath>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "workloads/generator.hpp"

namespace asipfb::wl {

namespace {

// --- Small emission helpers -------------------------------------------------

/// snprintf into a std::string (arguments are ints/doubles/C strings only).
std::string fmt(const char* f, ...) {
  char buf[256];
  va_list args;
  va_start(args, f);
  std::vsnprintf(buf, sizeof buf, f, args);
  va_end(args);
  return buf;
}

/// A float literal that the BenchC frontend parses back to exactly `v`.
std::string f32lit(float v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", static_cast<double>(v));
  return std::string(buf) + "f";
}

std::string int_array_init(const char* name, const std::vector<std::int32_t>& v) {
  std::string out = fmt("int %s[%d] = { ", name, static_cast<int>(v.size()));
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(v[i]);
  }
  return out + " };\n";
}

std::string float_array_init(const char* name, const std::vector<float>& v) {
  std::string out = fmt("float %s[%d] = { ", name, static_cast<int>(v.size()));
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ", ";
    out += f32lit(v[i]);
  }
  return out + " };\n";
}

// --- Oracle helpers ---------------------------------------------------------

/// Mirrors sim::fp_to_int: truncation with defined out-of-range behaviour.
std::int32_t oracle_fp_to_int(float f) {
  if (std::isnan(f) || f >= 2147483648.0f || f < -2147483648.0f) return 0;
  return static_cast<std::int32_t>(f);
}

std::vector<std::int32_t> words_of(const std::vector<float>& v) {
  std::vector<std::int32_t> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = std::bit_cast<std::int32_t>(v[i]);
  return out;
}

/// Histogram equalization of `in` (values must already lie in [0, levels))
/// exactly as the emitted BenchC stage computes it.
std::vector<std::int32_t> oracle_histeq(const std::vector<std::int32_t>& in,
                                        int levels) {
  std::vector<std::int32_t> hist(static_cast<std::size_t>(levels), 0);
  for (std::int32_t p : in) hist[static_cast<std::size_t>(p)]++;
  std::vector<std::int32_t> cdf(static_cast<std::size_t>(levels), 0);
  std::int32_t cum = 0;
  for (int i = 0; i < levels; ++i) {
    cum += hist[static_cast<std::size_t>(i)];
    cdf[static_cast<std::size_t>(i)] = cum;
  }
  std::int32_t cdf_min = 0;
  for (int i = 0; i < levels; ++i) {
    if (cdf[static_cast<std::size_t>(i)] > 0) {
      cdf_min = cdf[static_cast<std::size_t>(i)];
      break;
    }
  }
  std::int32_t denom = static_cast<std::int32_t>(in.size()) - cdf_min;
  if (denom < 1) denom = 1;
  std::vector<std::int32_t> map(static_cast<std::size_t>(levels), 0);
  for (int i = 0; i < levels; ++i) {
    std::int32_t v = cdf[static_cast<std::size_t>(i)] - cdf_min;
    if (v < 0) v = 0;
    map[static_cast<std::size_t>(i)] = (v * (levels - 1)) / denom;
    if (map[static_cast<std::size_t>(i)] > levels - 1) {
      map[static_cast<std::size_t>(i)] = levels - 1;
    }
  }
  std::vector<std::int32_t> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = map[static_cast<std::size_t>(in[i])];
  }
  return out;
}

/// The shared BenchC histogram-equalization stage over global `in` into
/// global `out` (count elements, `levels` gray levels).  Matches
/// oracle_histeq().  Assumes scalars `i`, `cum`, `cdf_min`, `denom` are
/// free to declare.
std::string emit_histeq_stage(const char* in, const char* out, int count,
                              int levels) {
  std::string s;
  s += fmt("  for (i = 0; i < %d; i++) {\n    hist[i] = 0;\n  }\n", levels);
  s += fmt("  for (i = 0; i < %d; i++) {\n    hist[%s[i]]++;\n  }\n", count, in);
  s += "  int cum = 0;\n";
  s += fmt("  for (i = 0; i < %d; i++) {\n    cum += hist[i];\n    cdf[i] = cum;\n  }\n", levels);
  s += "  int cdf_min = 0;\n";
  s += fmt(
      "  for (i = 0; i < %d; i++) {\n    if (cdf[i] > 0) {\n"
      "      cdf_min = cdf[i];\n      break;\n    }\n  }\n",
      levels);
  s += fmt("  int denom = %d - cdf_min;\n  if (denom < 1) {\n    denom = 1;\n  }\n", count);
  s += fmt(
      "  for (i = 0; i < %d; i++) {\n    int v = cdf[i] - cdf_min;\n"
      "    if (v < 0) {\n      v = 0;\n    }\n"
      "    map[i] = (v * %d) / denom;\n"
      "    if (map[i] > %d) {\n      map[i] = %d;\n    }\n  }\n",
      levels, levels - 1, levels - 1, levels - 1);
  s += fmt("  for (i = 0; i < %d; i++) {\n    %s[i] = map[%s[i]];\n  }\n", count,
           out, in);
  return s;
}

/// Sum-and-store checksum postlude shared by the integer families.
std::string emit_int_checksum(const char* array, int count) {
  std::string s;
  s += "  int s = 0;\n";
  s += fmt("  for (i = 0; i < %d; i++) {\n    s += %s[i];\n  }\n", count, array);
  s += "  checksum = s;\n  return s;\n";
  return s;
}

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(std::string("generator: ") + what);
}

/// The fixed conv2d kernel table (Conv2dParams::kernel indexes it).
struct ConvKernel {
  const char* name;
  std::int32_t w[9];
};
constexpr ConvKernel kConvKernels[kConvKernelCount] = {
    {"sobel_x", {-1, 0, 1, -2, 0, 2, -1, 0, 1}},
    {"sobel_y", {-1, -2, -1, 0, 0, 0, 1, 2, 1}},
    {"laplace", {0, -1, 0, -1, 4, -1, 0, -1, 0}},
    {"gauss", {1, 2, 1, 2, 4, 2, 1, 2, 1}},
    {"box", {1, 1, 1, 1, 1, 1, 1, 1, 1}},
    {"sharpen", {0, -1, 0, -1, 8, -1, 0, -1, 0}},
};

}  // namespace

// --- FIR --------------------------------------------------------------------

Workload make_fir_scenario(const FirParams& p, std::uint64_t data_seed,
                           std::string name) {
  require(p.taps >= 1 && p.taps <= 256, "fir taps out of range");
  require(p.length >= p.taps && p.length <= 4096, "fir length out of range");
  require(p.acc_shift >= 0 && p.acc_shift <= 31, "fir acc_shift out of range");
  require(p.sat_bits == 0 || (p.sat_bits >= 2 && p.sat_bits <= 31),
          "fir sat_bits out of range");

  Workload w;
  w.name = std::move(name);
  Rng rng(data_seed);

  std::string src = fmt("/* %s: generated %d-tap %s FIR over %d samples. */\n",
                        w.name.c_str(), p.taps, p.integer ? "integer" : "float",
                        p.length);
  if (!p.integer) {
    // Float datapath, fir-style.
    const std::vector<float> h = rng.float_array(static_cast<std::size_t>(p.taps),
                                                 -1.0f, 1.0f);
    const std::vector<float> x = rng.float_array(static_cast<std::size_t>(p.length),
                                                 -1.0f, 1.0f);
    src += fmt("float x[%d];\nfloat y[%d];\n", p.length, p.length);
    src += float_array_init("h", h);
    src += "float checksum;\n\nint main() {\n  int n;\n  int k;\n";
    src += fmt("  for (n = 0; n < %d; n++) {\n", p.length);
    src += "    float acc = 0.0;\n";
    src += fmt("    for (k = 0; k < %d; k++) {\n", p.taps);
    src += "      int j = n - k;\n      if (j >= 0) {\n";
    src += "        acc += h[k] * x[j];\n      }\n    }\n";
    src += "    y[n] = acc;\n  }\n";
    src += "  float s = 0.0;\n";
    src += fmt("  for (n = 0; n < %d; n++) {\n    s += y[n];\n  }\n", p.length);
    src += "  checksum = s;\n  return (int)(s * 1000.0);\n}\n";

    // Oracle.
    std::vector<float> y(static_cast<std::size_t>(p.length));
    for (int n = 0; n < p.length; ++n) {
      float acc = 0.0f;
      for (int k = 0; k < p.taps; ++k) {
        const int j = n - k;
        if (j >= 0) {
          acc = acc + h[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(j)];
        }
      }
      y[static_cast<std::size_t>(n)] = acc;
    }
    float s = 0.0f;
    for (int n = 0; n < p.length; ++n) s = s + y[static_cast<std::size_t>(n)];

    w.description = fmt("generated %d-tap float FIR", p.taps);
    w.data_description = fmt("random array of %d floats in [-1,1)", p.length);
    w.input.add("x", x);
    w.outputs = {"y", "checksum"};
    w.expected["y"] = words_of(y);
    w.expected["checksum"] = {std::bit_cast<std::int32_t>(s)};
    w.expected_exit = oracle_fp_to_int(s * 1000.0f);
  } else {
    // Integer datapath, sewha-style: shift-normalized, optionally saturated.
    const std::vector<std::int32_t> h =
        rng.int_array(static_cast<std::size_t>(p.taps), -32, 31);
    const std::vector<std::int32_t> x =
        rng.int_array(static_cast<std::size_t>(p.length), -128, 127);
    const std::int32_t sat_max =
        p.sat_bits > 0 ? (std::int32_t{1} << (p.sat_bits - 1)) - 1 : 0;
    const std::int32_t sat_min = p.sat_bits > 0 ? -(std::int32_t{1} << (p.sat_bits - 1)) : 0;

    src += fmt("int x[%d];\nint y[%d];\n", p.length, p.length);
    src += int_array_init("h", h);
    src += "int checksum;\n\nint main() {\n  int n;\n  int k;\n";
    src += fmt("  for (n = 0; n < %d; n++) {\n", p.length);
    src += "    int acc = 0;\n";
    src += fmt("    for (k = 0; k < %d; k++) {\n", p.taps);
    src += "      int j = n - k;\n      if (j >= 0) {\n";
    src += "        acc += h[k] * x[j];\n      }\n    }\n";
    src += fmt("    acc = acc >> %d;\n", p.acc_shift);
    if (p.sat_bits > 0) {
      src += fmt("    if (acc > %d) {\n      acc = %d;\n    }\n", sat_max, sat_max);
      src += fmt("    if (acc < %d) {\n      acc = %d;\n    }\n", sat_min, sat_min);
    }
    src += "    y[n] = acc;\n  }\n";
    src += "  int i;\n";
    src += emit_int_checksum("y", p.length);
    src += "}\n";

    // Oracle.
    std::vector<std::int32_t> y(static_cast<std::size_t>(p.length));
    for (int n = 0; n < p.length; ++n) {
      std::int32_t acc = 0;
      for (int k = 0; k < p.taps; ++k) {
        const int j = n - k;
        if (j >= 0) {
          acc += h[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(j)];
        }
      }
      acc = acc >> p.acc_shift;
      if (p.sat_bits > 0) {
        if (acc > sat_max) acc = sat_max;
        if (acc < sat_min) acc = sat_min;
      }
      y[static_cast<std::size_t>(n)] = acc;
    }
    std::int32_t s = 0;
    for (int n = 0; n < p.length; ++n) s += y[static_cast<std::size_t>(n)];

    w.description = fmt("generated %d-tap integer FIR (>>%d%s)", p.taps,
                        p.acc_shift,
                        p.sat_bits > 0 ? fmt(", sat %d-bit", p.sat_bits).c_str() : "");
    w.data_description = fmt("stream of %d random integers", p.length);
    w.input.add("x", x);
    w.outputs = {"y", "checksum"};
    w.expected["y"] = y;
    w.expected["checksum"] = {s};
    w.expected_exit = s;
  }
  w.source = src;
  return w;
}

// --- IIR --------------------------------------------------------------------

Workload make_iir_scenario(const IirParams& p, std::uint64_t data_seed,
                           std::string name) {
  require(p.sections >= 1 && p.sections <= 16, "iir sections out of range");
  require(p.length >= 1 && p.length <= 4096, "iir length out of range");

  Workload w;
  w.name = std::move(name);
  Rng rng(data_seed);

  // Stable biquads: poles at radius r in [0.3, 0.85], angle in [0.3, 2.8],
  // so a1 = -2 r cos(theta), a2 = r^2 keep every section bounded.
  const auto sections = static_cast<std::size_t>(p.sections);
  std::vector<float> b0(sections), b1(sections), b2(sections), a1(sections),
      a2(sections);
  for (std::size_t s = 0; s < sections; ++s) {
    const float r = rng.next_float(0.3f, 0.85f);
    const float theta = rng.next_float(0.3f, 2.8f);
    a1[s] = -2.0f * r * std::cos(theta);
    a2[s] = r * r;
    b0[s] = rng.next_float(-0.5f, 0.5f);
    b1[s] = rng.next_float(-0.5f, 0.5f);
    b2[s] = rng.next_float(-0.5f, 0.5f);
  }
  const std::vector<float> x =
      rng.float_array(static_cast<std::size_t>(p.length), -1.0f, 1.0f);

  std::string src =
      fmt("/* %s: generated %d-section IIR biquad cascade over %d samples. */\n",
          w.name.c_str(), p.sections, p.length);
  src += fmt("float x[%d];\nfloat y[%d];\n", p.length, p.length);
  src += float_array_init("b0", b0);
  src += float_array_init("b1", b1);
  src += float_array_init("b2", b2);
  src += float_array_init("a1", a1);
  src += float_array_init("a2", a2);
  src += fmt("float w1[%d];\nfloat w2[%d];\nfloat checksum;\n\n", p.sections,
             p.sections);
  src += "int main() {\n  int n;\n  int s;\n";
  src += fmt(
      "  for (s = 0; s < %d; s++) {\n    w1[s] = 0.0;\n    w2[s] = 0.0;\n  }\n",
      p.sections);
  src += fmt("  for (n = 0; n < %d; n++) {\n", p.length);
  src += "    float v = x[n];\n";
  src += fmt("    for (s = 0; s < %d; s++) {\n", p.sections);
  src += "      float t = v - a1[s] * w1[s] - a2[s] * w2[s];\n";
  src += "      v = b0[s] * t + b1[s] * w1[s] + b2[s] * w2[s];\n";
  src += "      w2[s] = w1[s];\n      w1[s] = t;\n    }\n";
  src += "    y[n] = v;\n  }\n";
  src += "  float acc = 0.0;\n";
  src += fmt("  for (n = 0; n < %d; n++) {\n    acc += y[n] * y[n];\n  }\n",
             p.length);
  src += "  checksum = acc;\n  return (int)(acc * 1000.0);\n}\n";
  w.source = src;

  // Oracle (direct form II, mirrored expression trees).
  std::vector<float> w1(sections, 0.0f), w2(sections, 0.0f);
  std::vector<float> y(static_cast<std::size_t>(p.length));
  for (int n = 0; n < p.length; ++n) {
    float v = x[static_cast<std::size_t>(n)];
    for (std::size_t s = 0; s < sections; ++s) {
      const float t = v - a1[s] * w1[s] - a2[s] * w2[s];
      v = b0[s] * t + b1[s] * w1[s] + b2[s] * w2[s];
      w2[s] = w1[s];
      w1[s] = t;
    }
    y[static_cast<std::size_t>(n)] = v;
  }
  float acc = 0.0f;
  for (int n = 0; n < p.length; ++n) {
    acc = acc + y[static_cast<std::size_t>(n)] * y[static_cast<std::size_t>(n)];
  }

  w.description = fmt("generated %d-section IIR biquad cascade", p.sections);
  w.data_description = fmt("random array of %d floats in [-1,1)", p.length);
  w.input.add("x", x);
  w.outputs = {"y", "checksum"};
  w.expected["y"] = words_of(y);
  w.expected["checksum"] = {std::bit_cast<std::int32_t>(acc)};
  w.expected_exit = oracle_fp_to_int(acc * 1000.0f);
  return w;
}

// --- DFT --------------------------------------------------------------------

Workload make_dft_scenario(const DftParams& p, std::uint64_t data_seed,
                           std::string name) {
  require(p.points >= 2 && p.points <= 256, "dft points out of range");

  Workload w;
  w.name = std::move(name);
  Rng rng(data_seed);
  const int K = p.points;
  const float omega = static_cast<float>(6.283185307179586 / K);  // 2*pi/K
  const std::vector<std::int32_t> x =
      rng.int_array(static_cast<std::size_t>(K), -128, 127);

  std::string src = fmt("/* %s: generated direct %d-point DFT. */\n",
                        w.name.c_str(), K);
  src += fmt("int x[%d];\nfloat xr[%d];\nfloat xi[%d];\nfloat checksum;\n\n", K,
             K, K);
  src += "int main() {\n  int k;\n  int n;\n";
  src += fmt("  for (k = 0; k < %d; k++) {\n", K);
  src += "    float sr = 0.0;\n    float si = 0.0;\n";
  src += fmt("    for (n = 0; n < %d; n++) {\n", K);
  src += fmt("      float a = %s * (k * n);\n", f32lit(omega).c_str());
  src += "      sr += x[n] * cosf(a);\n";
  src += "      si -= x[n] * sinf(a);\n    }\n";
  src += "    xr[k] = sr;\n    xi[k] = si;\n  }\n";
  src += "  float s = 0.0;\n";
  src += fmt(
      "  for (k = 0; k < %d; k++) {\n    s += xr[k] * xr[k] + xi[k] * xi[k];\n  }\n",
      K);
  src += "  checksum = s;\n  return (int)(s * 0.000001);\n}\n";
  w.source = src;

  // Oracle: int->float promotion, then the same f32 tree per statement.
  std::vector<float> xr(static_cast<std::size_t>(K)), xi(static_cast<std::size_t>(K));
  for (int k = 0; k < K; ++k) {
    float sr = 0.0f;
    float si = 0.0f;
    for (int n = 0; n < K; ++n) {
      const float a = omega * static_cast<float>(k * n);
      sr = sr + static_cast<float>(x[static_cast<std::size_t>(n)]) * std::cos(a);
      si = si - static_cast<float>(x[static_cast<std::size_t>(n)]) * std::sin(a);
    }
    xr[static_cast<std::size_t>(k)] = sr;
    xi[static_cast<std::size_t>(k)] = si;
  }
  float s = 0.0f;
  for (int k = 0; k < K; ++k) {
    s = s + (xr[static_cast<std::size_t>(k)] * xr[static_cast<std::size_t>(k)] +
             xi[static_cast<std::size_t>(k)] * xi[static_cast<std::size_t>(k)]);
  }

  w.description = fmt("generated direct %d-point DFT", K);
  w.data_description = fmt("stream of %d random integers", K);
  w.input.add("x", x);
  w.outputs = {"xr", "xi", "checksum"};
  w.expected["xr"] = words_of(xr);
  w.expected["xi"] = words_of(xi);
  w.expected["checksum"] = {std::bit_cast<std::int32_t>(s)};
  w.expected_exit = oracle_fp_to_int(s * 0.000001f);
  return w;
}

// --- Conv2d -----------------------------------------------------------------

Workload make_conv2d_scenario(const Conv2dParams& p, std::uint64_t data_seed,
                              std::string name) {
  require(p.width >= 4 && p.width <= 128, "conv2d width out of range");
  require(p.height >= 4 && p.height <= 128, "conv2d height out of range");
  require(p.kernel >= 0 && p.kernel < kConvKernelCount, "conv2d kernel out of range");
  require(p.shift >= 0 && p.shift <= 15, "conv2d shift out of range");
  require(p.thresh >= 0, "conv2d thresh out of range");

  Workload w;
  w.name = std::move(name);
  Rng rng(data_seed);
  const int W = p.width, H = p.height, WH = W * H;
  const ConvKernel& kernel = kConvKernels[p.kernel];
  const std::vector<std::int32_t> img =
      rng.image8(static_cast<std::size_t>(W), static_cast<std::size_t>(H));

  std::string src = fmt(
      "/* %s: generated 3x3 %s convolution over a %dx%d 8-bit image (%s). */\n",
      w.name.c_str(), kernel.name, W, H,
      p.threshold ? "abs+threshold" : "shift+clamp");
  src += fmt("int img[%d];\nint out[%d];\n", WH, WH);
  src += int_array_init("kw", std::vector<std::int32_t>(kernel.w, kernel.w + 9));
  src += "int checksum;\n\nint main() {\n  int i;\n";
  src += fmt("  for (i = 0; i < %d; i++) {\n    out[i] = 0;\n  }\n", WH);
  src += "  int r;\n  int c;\n  int dr;\n  int dc;\n";
  src += fmt("  for (r = 1; r < %d; r++) {\n", H - 1);
  src += fmt("    for (c = 1; c < %d; c++) {\n", W - 1);
  src += "      int acc = 0;\n";
  src += "      for (dr = -1; dr <= 1; dr++) {\n";
  src += "        for (dc = -1; dc <= 1; dc++) {\n";
  src += fmt("          acc += kw[(dr + 1) * 3 + dc + 1] * img[(r + dr) * %d + c + dc];\n", W);
  src += "        }\n      }\n";
  if (p.threshold) {
    src += "      int m = abs(acc);\n      int e = 0;\n";
    src += fmt("      if (m > %d) {\n        e = 255;\n      }\n", p.thresh);
    src += fmt("      out[r * %d + c] = e;\n", W);
  } else {
    src += fmt("      int v = acc >> %d;\n", p.shift);
    src += "      if (v > 255) {\n        v = 255;\n      }\n";
    src += "      if (v < 0) {\n        v = 0;\n      }\n";
    src += fmt("      out[r * %d + c] = v;\n", W);
  }
  src += "    }\n  }\n";
  src += emit_int_checksum("out", WH);
  src += "}\n";
  w.source = src;

  // Oracle.
  std::vector<std::int32_t> out(static_cast<std::size_t>(WH), 0);
  for (int r = 1; r < H - 1; ++r) {
    for (int c = 1; c < W - 1; ++c) {
      std::int32_t acc = 0;
      for (int dr = -1; dr <= 1; ++dr) {
        for (int dc = -1; dc <= 1; ++dc) {
          acc += kernel.w[(dr + 1) * 3 + dc + 1] *
                 img[static_cast<std::size_t>((r + dr) * W + c + dc)];
        }
      }
      std::int32_t result;
      if (p.threshold) {
        result = std::abs(acc) > p.thresh ? 255 : 0;
      } else {
        result = acc >> p.shift;
        if (result > 255) result = 255;
        if (result < 0) result = 0;
      }
      out[static_cast<std::size_t>(r * W + c)] = result;
    }
  }
  std::int32_t s = 0;
  for (std::int32_t v : out) s += v;

  w.description = fmt("generated 3x3 %s convolution (%s)", kernel.name,
                      p.threshold ? "edge-style" : "smooth-style");
  w.data_description = fmt("%dx%d 8-bit image", W, H);
  w.input.add("img", img);
  w.outputs = {"out", "checksum"};
  w.expected["out"] = out;
  w.expected["checksum"] = {s};
  w.expected_exit = s;
  return w;
}

// --- HistEq -----------------------------------------------------------------

Workload make_histeq_scenario(const HistEqParams& p, std::uint64_t data_seed,
                              std::string name) {
  require(p.width >= 1 && p.width <= 128, "histeq width out of range");
  require(p.height >= 1 && p.height <= 128, "histeq height out of range");
  require(p.levels >= 2 && p.levels <= 256, "histeq levels out of range");

  Workload w;
  w.name = std::move(name);
  Rng rng(data_seed);
  const int WH = p.width * p.height;
  const std::vector<std::int32_t> img =
      rng.int_array(static_cast<std::size_t>(WH), 0, p.levels - 1);

  std::string src = fmt(
      "/* %s: generated histogram equalization of a %dx%d image, %d levels. */\n",
      w.name.c_str(), p.width, p.height, p.levels);
  src += fmt("int img[%d];\nint out[%d];\n", WH, WH);
  src += fmt("int hist[%d];\nint cdf[%d];\nint map[%d];\nint checksum;\n\n",
             p.levels, p.levels, p.levels);
  src += "int main() {\n  int i;\n";
  src += emit_histeq_stage("img", "out", WH, p.levels);
  src += emit_int_checksum("out", WH);
  src += "}\n";
  w.source = src;

  const std::vector<std::int32_t> out = oracle_histeq(img, p.levels);
  std::int32_t s = 0;
  for (std::int32_t v : out) s += v;

  w.description = fmt("generated histogram equalization (%d levels)", p.levels);
  w.data_description = fmt("%dx%d image, pixels in [0,%d]", p.width, p.height,
                           p.levels - 1);
  w.input.add("img", img);
  w.outputs = {"out", "checksum"};
  w.expected["out"] = out;
  w.expected["checksum"] = {s};
  w.expected_exit = s;
  return w;
}

// --- Fused pipelines --------------------------------------------------------

Workload make_fused_scenario(const FusedParams& p, std::uint64_t data_seed,
                             std::string name) {
  Workload w;
  w.name = std::move(name);
  Rng rng(data_seed);

  if (!p.image) {
    // Stream pipeline: integer FIR -> saturate to [0,255] -> equalize.
    require(p.taps >= 1 && p.taps <= 256, "fused taps out of range");
    require(p.length >= p.taps && p.length <= 4096, "fused length out of range");
    const std::vector<std::int32_t> h =
        rng.int_array(static_cast<std::size_t>(p.taps), 0, 15);
    const std::vector<std::int32_t> x =
        rng.int_array(static_cast<std::size_t>(p.length), 0, 255);
    // Normalize so a full-overlap accumulator lands near the 8-bit range:
    // acc <= 255 * sum(h), so shift by ceil(log2(sum(h))) (>= 0).
    std::int32_t hsum = 0;
    for (std::int32_t v : h) hsum += v;
    int shift = 0;
    while ((std::int32_t{1} << shift) < hsum) ++shift;

    std::string src = fmt(
        "/* %s: generated fused pipeline: %d-tap FIR -> saturate -> "
        "histogram equalization over %d samples. */\n",
        w.name.c_str(), p.taps, p.length);
    src += fmt("int x[%d];\nint y[%d];\nint out[%d];\n", p.length, p.length,
               p.length);
    src += int_array_init("h", h);
    src += "int hist[256];\nint cdf[256];\nint map[256];\nint checksum;\n\n";
    src += "int main() {\n  int n;\n  int k;\n";
    src += fmt("  for (n = 0; n < %d; n++) {\n", p.length);
    src += "    int acc = 0;\n";
    src += fmt("    for (k = 0; k < %d; k++) {\n", p.taps);
    src += "      int j = n - k;\n      if (j >= 0) {\n";
    src += "        acc += h[k] * x[j];\n      }\n    }\n";
    src += fmt("    acc = acc >> %d;\n", shift);
    src += "    if (acc > 255) {\n      acc = 255;\n    }\n";
    src += "    if (acc < 0) {\n      acc = 0;\n    }\n";
    src += "    y[n] = acc;\n  }\n";
    src += "  int i;\n";
    src += emit_histeq_stage("y", "out", p.length, 256);
    src += emit_int_checksum("out", p.length);
    src += "}\n";
    w.source = src;

    // Oracle.
    std::vector<std::int32_t> y(static_cast<std::size_t>(p.length));
    for (int n = 0; n < p.length; ++n) {
      std::int32_t acc = 0;
      for (int k = 0; k < p.taps; ++k) {
        const int j = n - k;
        if (j >= 0) {
          acc += h[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(j)];
        }
      }
      acc = acc >> shift;
      if (acc > 255) acc = 255;
      if (acc < 0) acc = 0;
      y[static_cast<std::size_t>(n)] = acc;
    }
    const std::vector<std::int32_t> out = oracle_histeq(y, 256);
    std::int32_t s = 0;
    for (std::int32_t v : out) s += v;

    w.description = fmt("generated fused %d-tap FIR -> histogram equalization",
                        p.taps);
    w.data_description = fmt("stream of %d random 8-bit samples", p.length);
    w.input.add("x", x);
    w.outputs = {"y", "out", "checksum"};
    w.expected["y"] = y;
    w.expected["out"] = out;
    w.expected["checksum"] = {s};
    w.expected_exit = s;
  } else {
    // Image pipeline: gaussian smooth (border copy) -> equalize.
    require(p.width >= 4 && p.width <= 128, "fused width out of range");
    require(p.height >= 4 && p.height <= 128, "fused height out of range");
    const int W = p.width, H = p.height, WH = W * H;
    const std::vector<std::int32_t> img =
        rng.image8(static_cast<std::size_t>(W), static_cast<std::size_t>(H));
    const ConvKernel& kernel = kConvKernels[3];  // gauss, weight sum 16.

    std::string src = fmt(
        "/* %s: generated fused pipeline: 3x3 gaussian smooth -> histogram "
        "equalization over a %dx%d image. */\n",
        w.name.c_str(), W, H);
    src += fmt("int img[%d];\nint tmp[%d];\nint out[%d];\n", WH, WH, WH);
    src += int_array_init("kw", std::vector<std::int32_t>(kernel.w, kernel.w + 9));
    src += "int hist[256];\nint cdf[256];\nint map[256];\nint checksum;\n\n";
    src += "int main() {\n  int i;\n";
    src += fmt("  for (i = 0; i < %d; i++) {\n    tmp[i] = img[i];\n  }\n", WH);
    src += "  int r;\n  int c;\n  int dr;\n  int dc;\n";
    src += fmt("  for (r = 1; r < %d; r++) {\n", H - 1);
    src += fmt("    for (c = 1; c < %d; c++) {\n", W - 1);
    src += "      int acc = 0;\n";
    src += "      for (dr = -1; dr <= 1; dr++) {\n";
    src += "        for (dc = -1; dc <= 1; dc++) {\n";
    src += fmt("          acc += kw[(dr + 1) * 3 + dc + 1] * img[(r + dr) * %d + c + dc];\n", W);
    src += "        }\n      }\n";
    src += "      int v = acc >> 4;\n";
    src += "      if (v > 255) {\n        v = 255;\n      }\n";
    src += fmt("      tmp[r * %d + c] = v;\n", W);
    src += "    }\n  }\n";
    src += emit_histeq_stage("tmp", "out", WH, 256);
    src += emit_int_checksum("out", WH);
    src += "}\n";
    w.source = src;

    // Oracle.
    std::vector<std::int32_t> tmp = img;
    for (int r = 1; r < H - 1; ++r) {
      for (int c = 1; c < W - 1; ++c) {
        std::int32_t acc = 0;
        for (int dr = -1; dr <= 1; ++dr) {
          for (int dc = -1; dc <= 1; ++dc) {
            acc += kernel.w[(dr + 1) * 3 + dc + 1] *
                   img[static_cast<std::size_t>((r + dr) * W + c + dc)];
          }
        }
        std::int32_t v = acc >> 4;
        if (v > 255) v = 255;
        tmp[static_cast<std::size_t>(r * W + c)] = v;
      }
    }
    const std::vector<std::int32_t> out = oracle_histeq(tmp, 256);
    std::int32_t s = 0;
    for (std::int32_t v : out) s += v;

    w.description = "generated fused gaussian smooth -> histogram equalization";
    w.data_description = fmt("%dx%d 8-bit image", W, H);
    w.input.add("img", img);
    w.outputs = {"tmp", "out", "checksum"};
    w.expected["tmp"] = tmp;
    w.expected["out"] = out;
    w.expected["checksum"] = {s};
    w.expected_exit = s;
  }
  return w;
}

}  // namespace asipfb::wl
