// compress — 8x8 block DCT image compression at 4:1 (keep the 4x4
// low-frequency coefficients), with reconstruction.
// Paper Table 1: 190 lines, 24x24 8-bit image.
#include "support/rng.hpp"
#include "workloads/programs.hpp"

namespace asipfb::wl {

namespace {

const char* const kSource = R"(
/* Discrete cosine transform compression (4:1) of a 24x24 8-bit image. */
int img[576];
int out[576];
float blk[64];
float coef[64];
float ct[64];   /* ct[u*8+x] = cos((2x+1) u pi / 16) */
int checksum;

void load_block(int by, int bx) {
  int r;
  int c;
  for (r = 0; r < 8; r++) {
    for (c = 0; c < 8; c++) {
      blk[r * 8 + c] = img[(by * 8 + r) * 24 + bx * 8 + c];
    }
  }
}

void forward_dct() {
  int u;
  int v;
  int xx;
  int yy;
  for (u = 0; u < 8; u++) {
    for (v = 0; v < 8; v++) {
      float s = 0.0;
      for (xx = 0; xx < 8; xx++) {
        for (yy = 0; yy < 8; yy++) {
          s += blk[xx * 8 + yy] * ct[u * 8 + xx] * ct[v * 8 + yy];
        }
      }
      float su = 1.0;
      float sv = 1.0;
      if (u == 0) su = 0.70710678;
      if (v == 0) sv = 0.70710678;
      coef[u * 8 + v] = 0.25 * su * sv * s;
    }
  }
}

void quantize_4to1() {
  int u;
  int v;
  for (u = 0; u < 8; u++) {
    for (v = 0; v < 8; v++) {
      if (u >= 4 || v >= 4) {
        coef[u * 8 + v] = 0.0;
      }
    }
  }
}

void inverse_dct() {
  int u;
  int v;
  int xx;
  int yy;
  for (xx = 0; xx < 8; xx++) {
    for (yy = 0; yy < 8; yy++) {
      float s = 0.0;
      for (u = 0; u < 8; u++) {
        for (v = 0; v < 8; v++) {
          float su = 1.0;
          float sv = 1.0;
          if (u == 0) su = 0.70710678;
          if (v == 0) sv = 0.70710678;
          s += su * sv * coef[u * 8 + v] * ct[u * 8 + xx] * ct[v * 8 + yy];
        }
      }
      blk[xx * 8 + yy] = 0.25 * s;
    }
  }
}

void store_block(int by, int bx) {
  int r;
  int c;
  for (r = 0; r < 8; r++) {
    for (c = 0; c < 8; c++) {
      float t = blk[r * 8 + c] + 0.5;
      if (t < 0.0) t = 0.0;
      if (t > 255.0) t = 255.0;
      out[(by * 8 + r) * 24 + bx * 8 + c] = (int)t;
    }
  }
}

int main() {
  int u;
  int xx;
  for (u = 0; u < 8; u++) {
    for (xx = 0; xx < 8; xx++) {
      ct[u * 8 + xx] = cosf(3.14159265 * (2 * xx + 1) * u / 16.0);
    }
  }

  int by;
  int bx;
  for (by = 0; by < 3; by++) {
    for (bx = 0; bx < 3; bx++) {
      load_block(by, bx);
      forward_dct();
      quantize_4to1();
      inverse_dct();
      store_block(by, bx);
    }
  }

  int s = 0;
  int i;
  for (i = 0; i < 576; i++) {
    s += out[i];
  }
  checksum = s;
  return s;
}
)";

}  // namespace

Workload make_compress() {
  Workload w;
  w.name = "compress";
  w.description = "Discrete cosine transformation (4:1 comp)";
  w.data_description = "24x24 8-bit image";
  w.source = kSource;
  Rng rng(0x1005);
  w.input.add("img", rng.image8(24, 24));
  w.outputs = {"out", "checksum"};
  return w;
}

}  // namespace asipfb::wl
