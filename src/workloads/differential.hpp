// The one differential battery shared by the per-build fuzz test, the
// mutator contract test, and the 10k-scenario gauntlet — so the gauntlet
// exercises exactly the checks the tests gate on instead of a diverging
// copy.
//
// Four checks per workload, each independently switchable:
//   * oracle: the simulated baseline must reproduce Workload::expected
//     (raw words, floats bit-compared) and expected_exit;
//   * levels: O1 and O2 variants must match the baseline's outputs and
//     exit code bit for bit;
//   * fusion: the fused interpreter tier must match the unfused oracle —
//     outputs, exit, steps, cycles, and per-instruction profile hash;
//   * jit: the native-code tier (sim/jit.hpp) must match the unfused
//     oracle on the same axes.  Reports true unchecked on builds where
//     the JIT is unavailable (the tier then is the interpreter).
#pragma once

#include <string>

#include "workloads/suite.hpp"

namespace asipfb::wl {

/// Which of the three differential checks to run.
struct DifferentialOptions {
  bool check_oracle = true;
  bool check_levels = true;
  bool check_fusion = true;
  bool check_jit = true;
};

/// Outcome of the battery on one workload.  A disabled check reports true
/// (it cannot fail); `error` carries the first failure's description.
struct DifferentialOutcome {
  bool compiled = false;
  bool oracle_ok = false;
  bool levels_ok = false;
  bool fusion_ok = false;
  bool jit_ok = false;
  std::string error;

  [[nodiscard]] bool ok() const {
    return compiled && oracle_ok && levels_ok && fusion_ok && jit_ok;
  }
};

/// Runs the battery on `w`.  Never throws for check failures — compile
/// errors and mismatches come back in the outcome, so gauntlet shards can
/// count them instead of dying on the first one.
[[nodiscard]] DifferentialOutcome check_workload(
    const Workload& w, const DifferentialOptions& options = {});

}  // namespace asipfb::wl
