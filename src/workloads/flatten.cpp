// flatten — histogram flattening (gray-level modification / equalization).
// Paper Table 1: 195 lines, 24x24 8-bit image.
#include "support/rng.hpp"
#include "workloads/programs.hpp"

namespace asipfb::wl {

namespace {

const char* const kSource = R"(
/* Histogram flattening (gray level modification) of a 24x24 8-bit image. */
int img[576];
int out[576];
int hist[256];
int cdf[256];
int map[256];
int checksum;

void build_histogram() {
  int i;
  for (i = 0; i < 256; i++) {
    hist[i] = 0;
  }
  for (i = 0; i < 576; i++) {
    hist[img[i]]++;
  }
}

void build_mapping() {
  int i;
  int cum = 0;
  for (i = 0; i < 256; i++) {
    cum += hist[i];
    cdf[i] = cum;
  }
  /* Find the first non-zero CDF value (cdf_min). */
  int cdf_min = 0;
  for (i = 0; i < 256; i++) {
    if (cdf[i] > 0) {
      cdf_min = cdf[i];
      break;
    }
  }
  int denom = 576 - cdf_min;
  if (denom < 1) denom = 1;
  for (i = 0; i < 256; i++) {
    int v = cdf[i] - cdf_min;
    if (v < 0) v = 0;
    map[i] = (v * 255) / denom;
    if (map[i] > 255) map[i] = 255;
  }
}

void apply_mapping() {
  int i;
  for (i = 0; i < 576; i++) {
    out[i] = map[img[i]];
  }
}

int main() {
  build_histogram();
  build_mapping();
  apply_mapping();

  int s = 0;
  int i;
  for (i = 0; i < 576; i++) {
    s += out[i];
  }
  checksum = s;
  return s;
}
)";

}  // namespace

Workload make_flatten() {
  Workload w;
  w.name = "flatten";
  w.description = "Histogram flattening (gray level mod.)";
  w.data_description = "24x24 8-bit image";
  w.source = kSource;
  Rng rng(0x1006);
  w.input.add("img", rng.image8(24, 24));
  w.outputs = {"out", "checksum"};
  return w;
}

}  // namespace asipfb::wl
