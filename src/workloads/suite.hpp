// The paper's benchmark suite (Table 1), re-implemented in BenchC — plus
// the entry points for the generated corpus (generator.hpp).
//
// Twelve DSP programs with the data inputs of Table 1 (seeded deterministic
// generators): four float-stream filters (fir, iir), two FFT applications
// (pse, intfft), four 24x24 8-bit image kernels (compress, flatten, smooth,
// edge), and four integer-stream filters (sewha, dft, bspline, feowf).
// Beyond Table 1, `wl::corpus()` (src/workloads/generator.hpp) scales the
// same kernel families into hundreds of parameterized scenarios, each with
// oracle-computed reference outputs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pipeline/driver.hpp"

namespace asipfb::wl {

/// One benchmark scenario: a BenchC program, its deterministic input data,
/// and the globals to compare in differential tests.
struct Workload {
  std::string name;
  std::string description;        ///< Table 1 "Description" column.
  std::string data_description;   ///< Table 1 "Data Input" column.
  std::string source;             ///< BenchC program text.
  pipeline::WorkloadInput input;  ///< Deterministic input bindings.
  std::vector<std::string> outputs;  ///< Globals compared in differential tests.

  /// Reference outputs computed by a plain-C++ oracle, keyed by global name,
  /// as raw i32 words (floats bit-cast) — the exact representation
  /// pipeline::ExecutionResult::outputs uses.  Empty for the hand-written
  /// Table-1 suite; generated corpus workloads carry one entry per
  /// `outputs` global so every scenario is checkable sim-vs-oracle.
  std::map<std::string, std::vector<std::int32_t>> expected;

  /// Oracle-computed exit code of main(); engaged only for generated
  /// workloads.
  std::optional<std::int32_t> expected_exit;
};

/// All twelve benchmarks, in the paper's Table 1 order.
[[nodiscard]] const std::vector<Workload>& suite();

/// Lookup by name; throws std::out_of_range for unknown names.
[[nodiscard]] const Workload& workload(const std::string& name);

/// Number of non-blank source lines of a workload (Table 1 "Lines C-code").
[[nodiscard]] int source_lines(const Workload& w);

}  // namespace asipfb::wl
