// The paper's benchmark suite (Table 1), re-implemented in BenchC.
//
// Twelve DSP programs with the data inputs of Table 1 (seeded deterministic
// generators): four float-stream filters (fir, iir), two FFT applications
// (pse, intfft), four 24x24 8-bit image kernels (compress, flatten, smooth,
// edge), and four integer-stream filters (sewha, dft, bspline, feowf).
#pragma once

#include <string>
#include <vector>

#include "pipeline/driver.hpp"

namespace asipfb::wl {

struct Workload {
  std::string name;
  std::string description;        ///< Table 1 "Description" column.
  std::string data_description;   ///< Table 1 "Data Input" column.
  std::string source;             ///< BenchC program text.
  pipeline::WorkloadInput input;  ///< Deterministic input bindings.
  std::vector<std::string> outputs;  ///< Globals compared in differential tests.
};

/// All twelve benchmarks, in the paper's Table 1 order.
[[nodiscard]] const std::vector<Workload>& suite();

/// Lookup by name; throws std::out_of_range for unknown names.
[[nodiscard]] const Workload& workload(const std::string& name);

/// Number of non-blank source lines of a workload (Table 1 "Lines C-code").
[[nodiscard]] int source_lines(const Workload& w);

}  // namespace asipfb::wl
