#include "workloads/suite.hpp"

#include <sstream>
#include <stdexcept>

#include "workloads/programs.hpp"

namespace asipfb::wl {

const std::vector<Workload>& suite() {
  static const std::vector<Workload> workloads = [] {
    std::vector<Workload> all;
    all.push_back(make_fir());
    all.push_back(make_iir());
    all.push_back(make_pse());
    all.push_back(make_intfft());
    all.push_back(make_compress());
    all.push_back(make_flatten());
    all.push_back(make_smooth());
    all.push_back(make_edge());
    all.push_back(make_sewha());
    all.push_back(make_dft());
    all.push_back(make_bspline());
    all.push_back(make_feowf());
    return all;
  }();
  return workloads;
}

const Workload& workload(const std::string& name) {
  for (const auto& w : suite()) {
    if (w.name == name) return w;
  }
  throw std::out_of_range("no such workload: " + name);
}

int source_lines(const Workload& w) {
  std::istringstream stream(w.source);
  std::string line;
  int count = 0;
  while (std::getline(stream, line)) {
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        ++count;
        break;
      }
    }
  }
  return count;
}

}  // namespace asipfb::wl
