// Internal factory functions, one per hand-written Table-1 benchmark (see
// suite.hpp).  Parameterized *families* of these kernels live in
// generator.hpp instead — add one-off programs here, scalable scenario
// templates there.
#pragma once

#include "workloads/suite.hpp"

namespace asipfb::wl {

Workload make_fir();
Workload make_iir();
Workload make_pse();
Workload make_intfft();
Workload make_compress();
Workload make_flatten();
Workload make_smooth();
Workload make_edge();
Workload make_sewha();
Workload make_dft();
Workload make_bspline();
Workload make_feowf();

}  // namespace asipfb::wl
