// Oracle-preserving structural mutator for BenchC: seeded
// semantics-preserving rewrites of generated programs, so one
// (family, params) point yields many structurally distinct programs that
// all share the original workload's expected outputs and exit code.
//
// Preservation contract (what "semantics-preserving" means here): the
// mutated program, compiled and simulated at any optimization level,
// produces bit-identical output globals and exit code to the original.
// Step and cycle counts are explicitly NOT preserved — mutations add and
// reorder work.  Every rewrite is gated on a conservative static
// eligibility check (see mutate.cpp for the per-rewrite rules); when no
// site in the program satisfies a rewrite's rule, that rewrite simply does
// not fire.
//
// Bit-exactness rules baked into the eligibility checks:
//   * statement swaps require disjoint read/write sets and call-free,
//     side-effect-free expressions on both sides;
//   * loop rotation (for -> while canonicalization) requires no free
//     `continue` in the body (a continue would skip the step expression);
//   * iteration peeling requires no free `break`/`continue` (the peeled
//     copy sits outside any loop);
//   * operand commutation applies to `+` and `*` only, whose IEEE-754 and
//     wrapping-i32 results are order-independent for the NaN-free programs
//     the generator emits;
//   * reassociation applies to integer `+`/`*` chains only, which are
//     exactly associative under the simulator's wrapping arithmetic —
//     float chains are never reassociated.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace asipfb::wl {

/// The catalog of semantics-preserving rewrites.
enum class Rewrite : std::uint8_t {
  kSwapStatements,  ///< Swap adjacent independent assignment statements.
  kRotateLoop,      ///< Canonicalize `for` into `{ init; while { body; step } }`.
  kPeelIteration,   ///< `while (c) b` -> `if (c) { b; while (c) b }`.
  kRenameLocals,    ///< Rename a function's local variables to fresh names.
  kSplitTemp,       ///< `int v = e;` -> `int v__sN = e; int v = v__sN;`.
  kInjectDeadCode,  ///< Insert a self-contained block over a fresh dead var.
  kCommuteOperands, ///< Swap the operands of a pure `+` or `*`.
  kReassociate,     ///< `(a op b) op c` -> `a op (b op c)`, integer only.
};

/// Number of Rewrite enumerators (for iteration in tests and drivers).
inline constexpr int kRewriteCount = 8;

/// All rewrite kinds, in enum order.
[[nodiscard]] const std::vector<Rewrite>& all_rewrites();

/// Stable lower-snake name of a rewrite ("swap_statements", ...).
[[nodiscard]] std::string_view to_string(Rewrite kind);

/// Outcome of a mutation run: the mutated source plus the rewrites that
/// actually fired, in application order.
struct MutationResult {
  std::string source;
  std::vector<Rewrite> applied;
};

/// Applies up to `count` stacked rewrites to `source`, choosing rewrite
/// kinds and sites from the seeded deterministic Rng.  Each round tries
/// rewrite kinds in a seeded order until one has an eligible site; if no
/// kind applies anywhere the run stops early (MutationResult::applied then
/// has fewer than `count` entries).  With `count == 0` the program is
/// round-tripped through the parser and printer unchanged — a formatting
/// normalization with identical semantics.
///
/// Deterministic: a pure function of (source, seed, count).
/// Throws fe::CompileError when `source` is not a valid BenchC program.
[[nodiscard]] MutationResult mutate(std::string_view source,
                                    std::uint64_t seed, int count);

/// Applies exactly one rewrite of `kind` at a seeded-random eligible site.
/// Returns std::nullopt when the program has no eligible site for `kind`.
[[nodiscard]] std::optional<MutationResult> apply_rewrite(
    std::string_view source, Rewrite kind, std::uint64_t seed);

}  // namespace asipfb::wl
