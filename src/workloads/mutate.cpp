// Structural mutator for BenchC (mutate.hpp): parse + sema, rewrite the
// typed AST in place, and print the result back to source.
//
// The printer is deliberately dumb: every composite expression is fully
// parenthesized, so operator precedence can never change across a
// round-trip, and sema-inserted implicit conversions reappear as explicit
// casts (legal BenchC with identical semantics).  Rewrites only ever fire
// at sites that pass their conservative eligibility check; anything the
// checks cannot prove independent, pure, or exactly associative is left
// alone.  Cloned subtrees share VarSym pointers with their originals —
// safe because printing goes through sym->name, and the mutated source is
// recompiled from scratch by whoever runs it.
#include "workloads/mutate.hpp"

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "frontend/ast.hpp"
#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "support/diagnostics.hpp"
#include "support/rng.hpp"

namespace asipfb::wl {

namespace {

using fe::Expr;
using fe::ExprKind;
using fe::ExprPtr;
using fe::Stmt;
using fe::StmtKind;
using fe::StmtPtr;
using fe::Tok;
using fe::VarSym;

// --- Printing ---------------------------------------------------------------

std::string_view type_name(ir::Type t) {
  switch (t) {
    case ir::Type::I32: return "int";
    case ir::Type::F32: return "float";
    case ir::Type::Void: return "void";
  }
  return "int";
}

std::string_view spell(Tok t) {
  switch (t) {
    case Tok::Assign: return "=";
    case Tok::PlusAssign: return "+=";
    case Tok::MinusAssign: return "-=";
    case Tok::StarAssign: return "*=";
    case Tok::SlashAssign: return "/=";
    case Tok::PercentAssign: return "%=";
    case Tok::ShlAssign: return "<<=";
    case Tok::ShrAssign: return ">>=";
    case Tok::AndAssign: return "&=";
    case Tok::OrAssign: return "|=";
    case Tok::XorAssign: return "^=";
    case Tok::PlusPlus: return "++";
    case Tok::MinusMinus: return "--";
    case Tok::Plus: return "+";
    case Tok::Minus: return "-";
    case Tok::Star: return "*";
    case Tok::Slash: return "/";
    case Tok::Percent: return "%";
    case Tok::Shl: return "<<";
    case Tok::Shr: return ">>";
    case Tok::Amp: return "&";
    case Tok::Pipe: return "|";
    case Tok::Caret: return "^";
    case Tok::Tilde: return "~";
    case Tok::AmpAmp: return "&&";
    case Tok::PipePipe: return "||";
    case Tok::Bang: return "!";
    case Tok::Eq: return "==";
    case Tok::Ne: return "!=";
    case Tok::Lt: return "<";
    case Tok::Le: return "<=";
    case Tok::Gt: return ">";
    case Tok::Ge: return ">=";
    default: return "?";
  }
}

/// A float literal the frontend parses back to exactly `v` (mirrors the
/// generator's f32lit: 9 significant digits round-trip any finite f32).
std::string float_lit(float v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", static_cast<double>(v));
  return std::string(buf) + "f";
}

std::string_view name_of(const Expr& e) {
  return e.sym != nullptr ? std::string_view(e.sym->name) : std::string_view(e.name);
}

void print_expr(const Expr& e, std::string& out) {
  switch (e.kind) {
    case ExprKind::IntLit:
      out += std::to_string(e.int_val);
      return;
    case ExprKind::FloatLit:
      out += float_lit(static_cast<float>(e.float_val));
      return;
    case ExprKind::Var:
      out += name_of(e);
      return;
    case ExprKind::Index:
      out += name_of(e);
      out += '[';
      print_expr(*e.children[0], out);
      out += ']';
      return;
    case ExprKind::Call:
      out += e.name;
      out += '(';
      for (std::size_t i = 0; i < e.children.size(); ++i) {
        if (i != 0) out += ", ";
        print_expr(*e.children[i], out);
      }
      out += ')';
      return;
    case ExprKind::Unary:
      out += '(';
      out += spell(e.op);
      print_expr(*e.children[0], out);
      out += ')';
      return;
    case ExprKind::Binary:
    case ExprKind::Assign:
      out += '(';
      print_expr(*e.children[0], out);
      out += ' ';
      out += spell(e.op);
      out += ' ';
      print_expr(*e.children[1], out);
      out += ')';
      return;
    case ExprKind::IncDec:
      out += '(';
      if (e.is_prefix) out += spell(e.op);
      print_expr(*e.children[0], out);
      if (!e.is_prefix) out += spell(e.op);
      out += ')';
      return;
    case ExprKind::Cast:
      out += "((";
      out += type_name(e.cast_type);
      out += ')';
      print_expr(*e.children[0], out);
      out += ')';
      return;
  }
}

/// "int v = (...);" / "float a[4];" — shared by block decls and for-inits.
std::string decl_text(const Stmt& s) {
  std::string out(type_name(s.decl_type));
  out += ' ';
  out += s.sym != nullptr ? s.sym->name : s.decl_name;
  if (s.decl_is_array) {
    out += '[';
    out += std::to_string(s.decl_array_size);
    out += ']';
  }
  if (s.decl_init) {
    out += " = ";
    print_expr(*s.decl_init, out);
  }
  out += ';';
  return out;
}

void print_stmt(const Stmt& s, int ind, std::string& out);

/// Prints `s` as the contents of a brace pair at `ind` (the braces are the
/// caller's): a Block contributes its children, anything else one line.
void print_braced_contents(const Stmt& s, int ind, std::string& out) {
  if (s.kind == StmtKind::Block) {
    for (const auto& c : s.body) print_stmt(*c, ind + 1, out);
  } else {
    print_stmt(s, ind + 1, out);
  }
}

void print_stmt(const Stmt& s, int ind, std::string& out) {
  const std::string pad(static_cast<std::size_t>(ind) * 2, ' ');
  switch (s.kind) {
    case StmtKind::Block:
      out += pad + "{\n";
      for (const auto& c : s.body) print_stmt(*c, ind + 1, out);
      out += pad + "}\n";
      return;
    case StmtKind::Decl:
      out += pad + decl_text(s) + "\n";
      return;
    case StmtKind::ExprStmt:
      out += pad;
      print_expr(*s.expr, out);
      out += ";\n";
      return;
    case StmtKind::If:
      out += pad + "if (";
      print_expr(*s.expr, out);
      out += ") {\n";
      print_braced_contents(*s.body[0], ind, out);
      if (s.body.size() > 1) {
        out += pad + "} else {\n";
        print_braced_contents(*s.body[1], ind, out);
      }
      out += pad + "}\n";
      return;
    case StmtKind::While:
      out += pad + "while (";
      print_expr(*s.expr, out);
      out += ") {\n";
      print_braced_contents(*s.body[0], ind, out);
      out += pad + "}\n";
      return;
    case StmtKind::For:
      out += pad + "for (";
      if (s.init_stmt) {
        if (s.init_stmt->kind == StmtKind::Decl) {
          out += decl_text(*s.init_stmt);
        } else {
          print_expr(*s.init_stmt->expr, out);
          out += ';';
        }
      } else {
        out += ';';
      }
      out += ' ';
      if (s.expr) print_expr(*s.expr, out);
      out += ';';
      if (s.expr2) {
        out += ' ';
        print_expr(*s.expr2, out);
      }
      out += ") {\n";
      print_braced_contents(*s.body[0], ind, out);
      out += pad + "}\n";
      return;
    case StmtKind::Return:
      out += pad + "return";
      if (s.expr) {
        out += ' ';
        print_expr(*s.expr, out);
      }
      out += ";\n";
      return;
    case StmtKind::Break:
      out += pad + "break;\n";
      return;
    case StmtKind::Continue:
      out += pad + "continue;\n";
      return;
  }
}

std::string print_unit(const fe::TranslationUnit& tu) {
  std::string out;
  for (const auto& g : tu.globals) {
    out += type_name(g.type);
    out += ' ';
    out += g.sym != nullptr ? g.sym->name : g.name;
    if (g.is_array) {
      out += '[';
      out += std::to_string(g.array_size);
      out += ']';
      if (!g.init.empty()) {
        out += " = { ";
        for (std::size_t i = 0; i < g.init.size(); ++i) {
          if (i != 0) out += ", ";
          print_expr(*g.init[i], out);
        }
        out += " }";
      }
    } else if (!g.init.empty()) {
      out += " = ";
      print_expr(*g.init[0], out);
    }
    out += ";\n";
  }
  for (const auto& fn : tu.functions) {
    out += '\n';
    out += type_name(fn.return_type);
    out += ' ';
    out += fn.name;
    out += '(';
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      if (i != 0) out += ", ";
      out += type_name(fn.params[i].second);
      out += ' ';
      out += fn.param_syms.size() == fn.params.size() ? fn.param_syms[i]->name
                                                      : fn.params[i].first;
    }
    out += ") {\n";
    for (const auto& c : fn.body->body) print_stmt(*c, 1, out);
    out += "}\n";
  }
  return out;
}

// --- Cloning ----------------------------------------------------------------
// Deep copies; VarSym pointers are shared (symbols are TU-owned and names
// are the only thing printing reads through them).

ExprPtr clone_expr(const ExprPtr& e) {
  if (!e) return nullptr;
  auto out = std::make_unique<Expr>();
  out->kind = e->kind;
  out->loc = e->loc;
  out->int_val = e->int_val;
  out->float_val = e->float_val;
  out->name = e->name;
  out->op = e->op;
  out->is_prefix = e->is_prefix;
  out->cast_type = e->cast_type;
  out->type = e->type;
  out->sym = e->sym;
  out->callee_index = e->callee_index;
  out->builtin = e->builtin;
  out->children.reserve(e->children.size());
  for (const auto& c : e->children) out->children.push_back(clone_expr(c));
  return out;
}

StmtPtr clone_stmt(const StmtPtr& s) {
  if (!s) return nullptr;
  auto out = std::make_unique<Stmt>();
  out->kind = s->kind;
  out->loc = s->loc;
  out->expr = clone_expr(s->expr);
  out->expr2 = clone_expr(s->expr2);
  out->init_stmt = clone_stmt(s->init_stmt);
  out->body.reserve(s->body.size());
  for (const auto& c : s->body) out->body.push_back(clone_stmt(c));
  out->sym = s->sym;
  out->decl_name = s->decl_name;
  out->decl_type = s->decl_type;
  out->decl_is_array = s->decl_is_array;
  out->decl_array_size = s->decl_array_size;
  out->decl_init = clone_expr(s->decl_init);
  return out;
}

// --- Static analysis for eligibility ----------------------------------------

/// Side-effect-free: no assignment, no increment, no call (even intrinsics,
/// conservatively).
bool expr_pure(const Expr& e) {
  if (e.kind == ExprKind::Assign || e.kind == ExprKind::IncDec ||
      e.kind == ExprKind::Call) {
    return false;
  }
  for (const auto& c : e.children) {
    if (!expr_pure(*c)) return false;
  }
  return true;
}

/// Break/continue statements that would bind OUTSIDE `s` (nested loops
/// capture their own).
void scan_free_jumps(const Stmt& s, bool& has_break, bool& has_continue) {
  switch (s.kind) {
    case StmtKind::Break: has_break = true; return;
    case StmtKind::Continue: has_continue = true; return;
    case StmtKind::While:
    case StmtKind::For:
      return;  // Inner loops bind their own break/continue.
    case StmtKind::Block:
    case StmtKind::If:
      for (const auto& c : s.body) scan_free_jumps(*c, has_break, has_continue);
      return;
    default:
      return;
  }
}

/// True when control can never flow past `s` (used to keep dead-code
/// injection out of unreachable positions the IR verifier could reject).
bool always_terminates(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::Return:
    case StmtKind::Break:
    case StmtKind::Continue:
      return true;
    case StmtKind::Block:
      return !s.body.empty() && always_terminates(*s.body.back());
    case StmtKind::If:
      return s.body.size() > 1 && always_terminates(*s.body[0]) &&
             always_terminates(*s.body[1]);
    default:
      return false;
  }
}

/// Variables an expression reads and writes, at whole-array granularity.
/// `opaque` flags anything the analysis refuses to reason about (calls,
/// unresolved symbols, exotic lvalues).
struct RwSets {
  std::set<const VarSym*> reads;
  std::set<const VarSym*> writes;
  bool opaque = false;
};

void collect_rw(const Expr& e, RwSets& rw) {
  switch (e.kind) {
    case ExprKind::Call:
      rw.opaque = true;
      return;
    case ExprKind::Var:
      if (e.sym == nullptr) { rw.opaque = true; return; }
      rw.reads.insert(e.sym);
      return;
    case ExprKind::Index:
      if (e.sym == nullptr) { rw.opaque = true; return; }
      rw.reads.insert(e.sym);
      collect_rw(*e.children[0], rw);
      return;
    case ExprKind::Assign:
    case ExprKind::IncDec: {
      const Expr& lv = *e.children[0];
      const bool reads_lvalue =
          e.kind == ExprKind::IncDec || e.op != Tok::Assign;
      if (lv.kind == ExprKind::Var && lv.sym != nullptr) {
        rw.writes.insert(lv.sym);
        if (reads_lvalue) rw.reads.insert(lv.sym);
      } else if (lv.kind == ExprKind::Index && lv.sym != nullptr) {
        rw.writes.insert(lv.sym);
        if (reads_lvalue) rw.reads.insert(lv.sym);
        collect_rw(*lv.children[0], rw);
      } else {
        rw.opaque = true;
        return;
      }
      if (e.kind == ExprKind::Assign) collect_rw(*e.children[1], rw);
      return;
    }
    default:
      for (const auto& c : e.children) collect_rw(*c, rw);
      return;
  }
}

bool disjoint(const std::set<const VarSym*>& a, const std::set<const VarSym*>& b) {
  for (const VarSym* s : a) {
    if (b.count(s) != 0) return false;
  }
  return true;
}

// --- Traversal --------------------------------------------------------------

template <typename F>
void walk_slots(StmtPtr& slot, F& f) {
  f(slot);
  Stmt& s = *slot;
  if (s.init_stmt) walk_slots(s.init_stmt, f);
  for (auto& c : s.body) walk_slots(c, f);
}

template <typename F>
void walk_exprs(ExprPtr& e, F& f) {
  if (!e) return;
  f(e);
  for (auto& c : e->children) walk_exprs(c, f);
}

// --- The mutator ------------------------------------------------------------

struct Mutator {
  fe::TranslationUnit& tu;
  Rng& rng;
  int fresh = 0;  ///< Suffix counter for generated names, unique per run.

  template <typename T>
  const T* pick(const std::vector<T>& sites) {
    if (sites.empty()) return nullptr;
    return &sites[rng.next_below(sites.size())];
  }

  /// Every Block statement's child list (function bodies included — they
  /// are Blocks), across all functions.
  std::vector<std::vector<StmtPtr>*> block_lists() {
    std::vector<std::vector<StmtPtr>*> out;
    auto f = [&](StmtPtr& slot) {
      if (slot->kind == StmtKind::Block) out.push_back(&slot->body);
    };
    for (auto& fn : tu.functions) walk_slots(fn.body, f);
    return out;
  }

  template <typename F>
  void each_slot(F f) {
    for (auto& fn : tu.functions) walk_slots(fn.body, f);
  }

  template <typename F>
  void each_expr(F f) {
    auto on_stmt = [&](StmtPtr& slot) {
      Stmt& s = *slot;
      walk_exprs(s.expr, f);
      walk_exprs(s.expr2, f);
      walk_exprs(s.decl_init, f);
    };
    each_slot(on_stmt);
  }

  std::string fresh_suffix() { return std::to_string(fresh++); }

  // --- Node builders for injected code -------------------------------------

  static ExprPtr make_int(std::int32_t v) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::IntLit;
    e->int_val = v;
    return e;
  }

  static ExprPtr make_var(const std::string& name, VarSym* sym) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Var;
    e->name = name;
    e->sym = sym;
    return e;
  }

  static ExprPtr make_bin(Tok op, ExprPtr l, ExprPtr r) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Binary;
    e->op = op;
    e->children.push_back(std::move(l));
    e->children.push_back(std::move(r));
    return e;
  }

  static StmtPtr make_assign_stmt(const std::string& name, ExprPtr rhs) {
    auto asn = std::make_unique<Expr>();
    asn->kind = ExprKind::Assign;
    asn->op = Tok::Assign;
    asn->children.push_back(make_var(name, nullptr));
    asn->children.push_back(std::move(rhs));
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::ExprStmt;
    s->expr = std::move(asn);
    return s;
  }

  // --- Rewrites -------------------------------------------------------------

  bool swap_statements() {
    struct Site { std::vector<StmtPtr>* list; std::size_t i; };
    std::vector<Site> sites;
    for (auto* list : block_lists()) {
      for (std::size_t i = 0; i + 1 < list->size(); ++i) {
        const Stmt& a = *(*list)[i];
        const Stmt& b = *(*list)[i + 1];
        if (a.kind != StmtKind::ExprStmt || b.kind != StmtKind::ExprStmt) continue;
        RwSets ra, rb;
        collect_rw(*a.expr, ra);
        collect_rw(*b.expr, rb);
        if (ra.opaque || rb.opaque) continue;
        if (!disjoint(ra.writes, rb.writes) || !disjoint(ra.writes, rb.reads) ||
            !disjoint(rb.writes, ra.reads)) {
          continue;
        }
        sites.push_back({list, i});
      }
    }
    const auto* site = pick(sites);
    if (site == nullptr) return false;
    std::swap((*site->list)[site->i], (*site->list)[site->i + 1]);
    return true;
  }

  bool rotate_loop() {
    std::vector<StmtPtr*> sites;
    each_slot([&](StmtPtr& slot) {
      if (slot->kind != StmtKind::For || !slot->expr) return;
      bool has_break = false, has_continue = false;
      scan_free_jumps(*slot->body[0], has_break, has_continue);
      if (has_continue) return;  // continue would skip the step expression.
      sites.push_back(&slot);
    });
    const auto* site = pick(sites);
    if (site == nullptr) return false;
    StmtPtr* slot = *site;
    StmtPtr orig = std::move(*slot);
    Stmt& f = *orig;
    auto wrapper = std::make_unique<Stmt>();
    wrapper->kind = StmtKind::Block;
    if (f.init_stmt) wrapper->body.push_back(std::move(f.init_stmt));
    auto wh = std::make_unique<Stmt>();
    wh->kind = StmtKind::While;
    wh->expr = std::move(f.expr);
    auto inner = std::make_unique<Stmt>();
    inner->kind = StmtKind::Block;
    inner->body.push_back(std::move(f.body[0]));
    if (f.expr2) {
      auto step = std::make_unique<Stmt>();
      step->kind = StmtKind::ExprStmt;
      step->expr = std::move(f.expr2);
      inner->body.push_back(std::move(step));
    }
    wh->body.push_back(std::move(inner));
    wrapper->body.push_back(std::move(wh));
    *slot = std::move(wrapper);
    return true;
  }

  bool peel_iteration() {
    std::vector<StmtPtr*> sites;
    each_slot([&](StmtPtr& slot) {
      if (slot->kind != StmtKind::While) return;
      bool has_break = false, has_continue = false;
      scan_free_jumps(*slot->body[0], has_break, has_continue);
      if (has_break || has_continue) return;  // Peeled copy is outside the loop.
      sites.push_back(&slot);
    });
    const auto* site = pick(sites);
    if (site == nullptr) return false;
    StmtPtr* slot = *site;
    StmtPtr orig = std::move(*slot);
    const Stmt& w = *orig;
    auto iff = std::make_unique<Stmt>();
    iff->kind = StmtKind::If;
    iff->expr = clone_expr(w.expr);
    auto then = std::make_unique<Stmt>();
    then->kind = StmtKind::Block;
    then->body.push_back(clone_stmt(w.body[0]));
    then->body.push_back(std::move(orig));
    iff->body.push_back(std::move(then));
    *slot = std::move(iff);
    return true;
  }

  bool rename_locals() {
    std::vector<std::vector<VarSym*>> sites;
    for (auto& fn : tu.functions) {
      std::set<VarSym*> seen;
      std::vector<VarSym*> syms;
      auto f = [&](StmtPtr& slot) {
        if (slot->kind != StmtKind::Decl || slot->sym == nullptr) return;
        if (slot->sym->storage != fe::Storage::Local) return;
        if (seen.insert(slot->sym).second) syms.push_back(slot->sym);
      };
      walk_slots(fn.body, f);
      if (!syms.empty()) sites.push_back(std::move(syms));
    }
    const auto* site = pick(sites);
    if (site == nullptr) return false;
    for (VarSym* sym : *site) sym->name += "__r" + fresh_suffix();
    return true;
  }

  bool split_temp() {
    struct Site { std::vector<StmtPtr>* list; std::size_t i; };
    std::vector<Site> sites;
    for (auto* list : block_lists()) {
      for (std::size_t i = 0; i < list->size(); ++i) {
        const Stmt& d = *(*list)[i];
        if (d.kind == StmtKind::Decl && !d.decl_is_array && d.decl_init &&
            d.sym != nullptr) {
          sites.push_back({list, i});
        }
      }
    }
    const auto* site = pick(sites);
    if (site == nullptr) return false;
    Stmt& d = *(*site->list)[site->i];
    VarSym* ns = tu.make_symbol();
    ns->name = d.sym->name + "__s" + fresh_suffix();
    ns->type = d.sym->type;
    ns->storage = fe::Storage::Local;
    auto nd = std::make_unique<Stmt>();
    nd->kind = StmtKind::Decl;
    nd->decl_type = d.decl_type;
    nd->decl_name = ns->name;
    nd->sym = ns;
    nd->decl_init = std::move(d.decl_init);
    auto ref = make_var(ns->name, ns);
    ref->type = ns->type;
    d.decl_init = std::move(ref);
    site->list->insert(site->list->begin() + static_cast<std::ptrdiff_t>(site->i),
                       std::move(nd));
    return true;
  }

  bool inject_dead_code() {
    struct Site { std::vector<StmtPtr>* list; std::size_t pos; };
    std::vector<Site> sites;
    for (auto* list : block_lists()) {
      for (std::size_t pos = 0; pos <= list->size(); ++pos) {
        if (pos > 0 && always_terminates(*(*list)[pos - 1])) continue;
        sites.push_back({list, pos});
      }
    }
    const auto* site = pick(sites);
    if (site == nullptr) return false;
    const std::string name = "__dead" + fresh_suffix();
    const std::int32_t c1 = rng.next_int(1, 99);
    const std::int32_t c2 = rng.next_int(2, 9);
    const std::int32_t c3 = rng.next_int(1, 49);

    auto decl = std::make_unique<Stmt>();
    decl->kind = StmtKind::Decl;
    decl->decl_type = ir::Type::I32;
    decl->decl_name = name;
    decl->decl_init = make_int(c1);

    auto churn = make_assign_stmt(
        name, make_bin(Tok::Plus,
                       make_bin(Tok::Star, make_var(name, nullptr), make_int(c2)),
                       make_int(c3)));

    auto iff = std::make_unique<Stmt>();
    iff->kind = StmtKind::If;
    iff->expr = make_bin(Tok::Amp, make_var(name, nullptr), make_int(1));
    auto then = std::make_unique<Stmt>();
    then->kind = StmtKind::Block;
    then->body.push_back(make_assign_stmt(
        name, make_bin(Tok::Shr, make_var(name, nullptr), make_int(1))));
    auto els = std::make_unique<Stmt>();
    els->kind = StmtKind::Block;
    els->body.push_back(make_assign_stmt(
        name, make_bin(Tok::Plus, make_var(name, nullptr), make_int(3))));
    iff->body.push_back(std::move(then));
    iff->body.push_back(std::move(els));

    auto block = std::make_unique<Stmt>();
    block->kind = StmtKind::Block;
    block->body.push_back(std::move(decl));
    block->body.push_back(std::move(churn));
    block->body.push_back(std::move(iff));
    site->list->insert(
        site->list->begin() + static_cast<std::ptrdiff_t>(site->pos),
        std::move(block));
    return true;
  }

  bool commute_operands() {
    std::vector<Expr*> sites;
    each_expr([&](ExprPtr& e) {
      if (e->kind != ExprKind::Binary) return;
      if (e->op != Tok::Plus && e->op != Tok::Star) return;
      if (!expr_pure(*e->children[0]) || !expr_pure(*e->children[1])) return;
      sites.push_back(e.get());
    });
    const auto* site = pick(sites);
    if (site == nullptr) return false;
    Expr* e = *site;
    std::swap(e->children[0], e->children[1]);
    return true;
  }

  bool reassociate() {
    std::vector<Expr*> sites;
    each_expr([&](ExprPtr& e) {
      if (e->kind != ExprKind::Binary || e->type != ir::Type::I32) return;
      if (e->op != Tok::Plus && e->op != Tok::Star) return;
      const Expr& l = *e->children[0];
      if (l.kind != ExprKind::Binary || l.op != e->op || l.type != ir::Type::I32) {
        return;
      }
      if (!expr_pure(l) || !expr_pure(*e->children[1])) return;
      sites.push_back(e.get());
    });
    const auto* site = pick(sites);
    if (site == nullptr) return false;
    Expr* e = *site;
    ExprPtr left = std::move(e->children[0]);
    ExprPtr a = std::move(left->children[0]);
    ExprPtr b = std::move(left->children[1]);
    ExprPtr c = std::move(e->children[1]);
    // Reuse the old left node as the new right: (a op b) op c -> a op (b op c).
    left->children[0] = std::move(b);
    left->children[1] = std::move(c);
    e->children[0] = std::move(a);
    e->children[1] = std::move(left);
    return true;
  }

  bool try_apply(Rewrite kind) {
    switch (kind) {
      case Rewrite::kSwapStatements: return swap_statements();
      case Rewrite::kRotateLoop: return rotate_loop();
      case Rewrite::kPeelIteration: return peel_iteration();
      case Rewrite::kRenameLocals: return rename_locals();
      case Rewrite::kSplitTemp: return split_temp();
      case Rewrite::kInjectDeadCode: return inject_dead_code();
      case Rewrite::kCommuteOperands: return commute_operands();
      case Rewrite::kReassociate: return reassociate();
    }
    return false;
  }
};

fe::TranslationUnit parse_and_check(std::string_view source) {
  DiagnosticEngine diags;
  fe::TranslationUnit tu = fe::parse(source, diags);
  diags.check();
  fe::analyze(tu, diags);
  diags.check();
  return tu;
}

}  // namespace

const std::vector<Rewrite>& all_rewrites() {
  static const std::vector<Rewrite> kinds = {
      Rewrite::kSwapStatements, Rewrite::kRotateLoop,
      Rewrite::kPeelIteration,  Rewrite::kRenameLocals,
      Rewrite::kSplitTemp,      Rewrite::kInjectDeadCode,
      Rewrite::kCommuteOperands, Rewrite::kReassociate};
  return kinds;
}

std::string_view to_string(Rewrite kind) {
  switch (kind) {
    case Rewrite::kSwapStatements: return "swap_statements";
    case Rewrite::kRotateLoop: return "rotate_loop";
    case Rewrite::kPeelIteration: return "peel_iteration";
    case Rewrite::kRenameLocals: return "rename_locals";
    case Rewrite::kSplitTemp: return "split_temp";
    case Rewrite::kInjectDeadCode: return "inject_dead_code";
    case Rewrite::kCommuteOperands: return "commute_operands";
    case Rewrite::kReassociate: return "reassociate";
  }
  return "unknown";
}

MutationResult mutate(std::string_view source, std::uint64_t seed, int count) {
  fe::TranslationUnit tu = parse_and_check(source);
  Rng rng(seed);
  Mutator m{tu, rng};
  MutationResult out;
  for (int round = 0; round < count; ++round) {
    std::vector<Rewrite> kinds = all_rewrites();
    for (std::size_t i = kinds.size(); i > 1; --i) {
      std::swap(kinds[i - 1], kinds[rng.next_below(i)]);
    }
    bool fired = false;
    for (Rewrite k : kinds) {
      if (m.try_apply(k)) {
        out.applied.push_back(k);
        fired = true;
        break;
      }
    }
    if (!fired) break;  // Nothing applies anywhere; stacking further is futile.
  }
  out.source = print_unit(tu);
  return out;
}

std::optional<MutationResult> apply_rewrite(std::string_view source,
                                            Rewrite kind, std::uint64_t seed) {
  fe::TranslationUnit tu = parse_and_check(source);
  Rng rng(seed);
  Mutator m{tu, rng};
  if (!m.try_apply(kind)) return std::nullopt;
  MutationResult out;
  out.source = print_unit(tu);
  out.applied.push_back(kind);
  return out;
}

}  // namespace asipfb::wl
