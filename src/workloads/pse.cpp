// pse — power spectral estimation via Welch's method (windowed, averaged
// 128-point FFT periodograms with 50% overlap).
// Paper Table 1: 220 lines, random array of 256 floating point values.
#include "support/rng.hpp"
#include "workloads/programs.hpp"

namespace asipfb::wl {

namespace {

const char* const kSource = R"(
/* Power spectral estimation using FFT (Welch periodogram average). */
float x[256];
float re[128];
float im[128];
float win[128];
float psd[65];
float checksum;

/* In-place iterative radix-2 FFT over the re/im globals.
   dir = -1 forward, +1 inverse (unscaled). */
void fft(int n, int dir) {
  int i;
  int j = 0;
  for (i = 0; i < n - 1; i++) {
    if (i < j) {
      float tr = re[i];
      re[i] = re[j];
      re[j] = tr;
      float ti = im[i];
      im[i] = im[j];
      im[j] = ti;
    }
    int k = n >> 1;
    while (k <= j) {
      j -= k;
      k >>= 1;
    }
    j += k;
  }

  int len;
  for (len = 2; len <= n; len <<= 1) {
    float ang = dir * 6.28318530718 / len;
    float wr = cosf(ang);
    float wi = sinf(ang);
    int base;
    for (base = 0; base < n; base += len) {
      float cr = 1.0;
      float ci = 0.0;
      int half = len >> 1;
      int p;
      for (p = 0; p < half; p++) {
        int a = base + p;
        int b = a + half;
        float tr = re[b] * cr - im[b] * ci;
        float ti = re[b] * ci + im[b] * cr;
        re[b] = re[a] - tr;
        im[b] = im[a] - ti;
        re[a] += tr;
        im[a] += ti;
        float nr = cr * wr - ci * wi;
        ci = cr * wi + ci * wr;
        cr = nr;
      }
    }
  }
}

int main() {
  int i;
  /* Hamming window. */
  for (i = 0; i < 128; i++) {
    win[i] = 0.54 - 0.46 * cosf(6.28318530718 * i / 127.0);
  }
  for (i = 0; i < 65; i++) {
    psd[i] = 0.0;
  }

  /* Three 128-sample segments with 50% overlap. */
  int seg;
  for (seg = 0; seg < 3; seg++) {
    int base = seg * 64;
    for (i = 0; i < 128; i++) {
      re[i] = x[base + i] * win[i];
      im[i] = 0.0;
    }
    fft(128, -1);
    for (i = 0; i < 65; i++) {
      float p = re[i] * re[i] + im[i] * im[i];
      psd[i] += p / 3.0;
    }
  }

  float s = 0.0;
  for (i = 0; i < 65; i++) {
    s += psd[i];
  }
  checksum = s;
  return (int)s;
}
)";

}  // namespace

Workload make_pse() {
  Workload w;
  w.name = "pse";
  w.description = "Power spectral estimation using FFT";
  w.data_description = "Random array of 256 floating point values";
  w.source = kSource;
  Rng rng(0x1003);
  w.input.add("x", rng.float_array(256, -1.0f, 1.0f));
  w.outputs = {"psd", "checksum"};
  return w;
}

}  // namespace asipfb::wl
