// smooth — 3x3 Gaussian blur lowpass filter.
// Paper Table 1: 130 lines, 24x24 8-bit image.
#include "support/rng.hpp"
#include "workloads/programs.hpp"

namespace asipfb::wl {

namespace {

const char* const kSource = R"(
/* 3x3 Gaussian blur lowpass filter over a 24x24 8-bit image. */
int img[576];
int out[576];
int kw[9] = { 1, 2, 1, 2, 4, 2, 1, 2, 1 };
int checksum;

int smooth_at(int r, int c) {
  int acc = 0;
  int dr;
  int dc;
  for (dr = -1; dr <= 1; dr++) {
    for (dc = -1; dc <= 1; dc++) {
      int w = kw[(dr + 1) * 3 + dc + 1];
      acc += w * img[(r + dr) * 24 + c + dc];
    }
  }
  return acc >> 4;
}

int main() {
  int r;
  int c;
  for (r = 0; r < 24; r++) {
    for (c = 0; c < 24; c++) {
      if (r == 0 || r == 23 || c == 0 || c == 23) {
        out[r * 24 + c] = img[r * 24 + c];
      } else {
        out[r * 24 + c] = smooth_at(r, c);
      }
    }
  }

  int s = 0;
  int i;
  for (i = 0; i < 576; i++) {
    s += out[i];
  }
  checksum = s;
  return s;
}
)";

}  // namespace

Workload make_smooth() {
  Workload w;
  w.name = "smooth";
  w.description = "3x3 Gaussian blur lowpass filter";
  w.data_description = "24x24 8-bit image";
  w.source = kSource;
  Rng rng(0x1007);
  w.input.add("img", rng.image8(24, 24));
  w.outputs = {"out", "checksum"};
  return w;
}

}  // namespace asipfb::wl
