// edge — edge detection by 2D convolution (Sobel pair + magnitude +
// threshold).
// Paper Table 1: 280 lines, 24x24 8-bit image.
#include "support/rng.hpp"
#include "workloads/programs.hpp"

namespace asipfb::wl {

namespace {

const char* const kSource = R"(
/* Edge detection using two-dimensional convolution (Sobel operators). */
int img[576];
int gx[576];
int gy[576];
int out[576];
int kx[9] = { -1, 0, 1, -2, 0, 2, -1, 0, 1 };
int ky[9] = { -1, -2, -1, 0, 0, 0, 1, 2, 1 };
int checksum;

/* General 3x3 convolution over the interior; which selects the kernel
   and the destination plane (0 -> kx/gx, 1 -> ky/gy). */
void conv2d(int which) {
  int r;
  int c;
  int dr;
  int dc;
  for (r = 1; r < 23; r++) {
    for (c = 1; c < 23; c++) {
      int acc = 0;
      for (dr = -1; dr <= 1; dr++) {
        for (dc = -1; dc <= 1; dc++) {
          int w;
          if (which == 0) {
            w = kx[(dr + 1) * 3 + dc + 1];
          } else {
            w = ky[(dr + 1) * 3 + dc + 1];
          }
          acc += w * img[(r + dr) * 24 + c + dc];
        }
      }
      if (which == 0) {
        gx[r * 24 + c] = acc;
      } else {
        gy[r * 24 + c] = acc;
      }
    }
  }
}

int main() {
  int i;
  for (i = 0; i < 576; i++) {
    gx[i] = 0;
    gy[i] = 0;
  }
  conv2d(0);
  conv2d(1);

  int s = 0;
  for (i = 0; i < 576; i++) {
    int m = abs(gx[i]) + abs(gy[i]);
    int e = 0;
    if (m > 160) {
      e = 255;
    }
    out[i] = e;
    s += e;
  }
  checksum = s;
  return s;
}
)";

}  // namespace

Workload make_edge() {
  Workload w;
  w.name = "edge";
  w.description = "Edge detection using 2D convolution";
  w.data_description = "24x24 8-bit image";
  w.source = kSource;
  Rng rng(0x1008);
  w.input.add("img", rng.image8(24, 24));
  w.outputs = {"out", "checksum"};
  return w;
}

}  // namespace asipfb::wl
