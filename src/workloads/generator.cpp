// Corpus assembly for the workload generator (generator.hpp): family
// round-robin, per-scenario seed derivation, and parameter sampling.
//
// Determinism contract: corpus(spec) is a pure function of the spec.  Each
// scenario's seed is a splitmix64 hash of (spec.seed, index), its
// parameters are drawn from that seed through the fixed xorshift64* Rng,
// and its data seed is drawn last — so inserting a new knob into one
// family never perturbs any other family or index.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "support/rng.hpp"
#include "workloads/generator.hpp"

namespace asipfb::wl {

namespace {

/// splitmix64: decorrelates (seed, index) into one scenario seed.
std::uint64_t scenario_seed(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + (index + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Picks one element of a fixed candidate list.
template <typename T, std::size_t N>
T pick(Rng& rng, const T (&candidates)[N]) {
  return candidates[rng.next_below(N)];
}

std::string scenario_name(Family family, std::size_t index) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "gen_%s_%03zu",
                std::string(to_string(family)).c_str(), index);
  return buf;
}

}  // namespace

std::string_view to_string(Family family) {
  switch (family) {
    case Family::kFir: return "fir";
    case Family::kIir: return "iir";
    case Family::kDft: return "dft";
    case Family::kConv2d: return "conv2d";
    case Family::kHistEq: return "histeq";
    case Family::kFused: return "fused";
    case Family::kRle: return "rle";
    case Family::kCalls: return "calls";
    case Family::kFft: return "fft";
  }
  return "unknown";
}

const std::vector<Family>& all_families() {
  static const std::vector<Family> families = {
      Family::kFir,    Family::kIir,   Family::kDft,
      Family::kConv2d, Family::kHistEq, Family::kFused,
      Family::kRle,    Family::kCalls, Family::kFft};
  return families;
}

Workload corpus_scenario(const CorpusSpec& spec, std::size_t index) {
  if (spec.families.empty()) {
    throw std::invalid_argument("CorpusSpec.families must not be empty");
  }
  if (index >= spec.count) {
    throw std::invalid_argument("corpus_scenario index out of range");
  }
  const Family family = spec.families[index % spec.families.size()];
  Rng rng(scenario_seed(spec.seed, index));  // Rng remaps a zero seed itself.
  std::string name = scenario_name(family, index);

  switch (family) {
    case Family::kFir: {
      FirParams p;
      p.taps = pick(rng, {4, 6, 8, 12, 16, 24, 32});
      p.length = pick(rng, {64, 96, 128, 192, 256});
      p.integer = rng.next_below(2) == 1;  // The datatype axis.
      p.acc_shift = 4 + static_cast<int>(rng.next_below(4));
      p.sat_bits = pick(rng, {0, 8, 16});  // The accumulator-width axis.
      return make_fir_scenario(p, rng.next_u64(), std::move(name));
    }
    case Family::kIir: {
      IirParams p;
      p.sections = pick(rng, {1, 2, 3, 4, 6});
      p.length = pick(rng, {64, 96, 128, 192, 256});
      return make_iir_scenario(p, rng.next_u64(), std::move(name));
    }
    case Family::kDft: {
      DftParams p;
      p.points = pick(rng, {16, 24, 32, 48, 64});
      return make_dft_scenario(p, rng.next_u64(), std::move(name));
    }
    case Family::kConv2d: {
      Conv2dParams p;
      p.width = pick(rng, {12, 16, 24, 32});
      p.height = pick(rng, {12, 16, 24, 32});
      p.kernel = static_cast<int>(rng.next_below(kConvKernelCount));
      p.threshold = rng.next_below(2) == 1;
      p.thresh = pick(rng, {96, 160, 224});
      p.shift = pick(rng, {3, 4, 5});
      return make_conv2d_scenario(p, rng.next_u64(), std::move(name));
    }
    case Family::kHistEq: {
      HistEqParams p;
      p.width = pick(rng, {12, 16, 24, 32, 48});
      p.height = pick(rng, {12, 16, 24, 32});
      p.levels = pick(rng, {64, 128, 256});
      return make_histeq_scenario(p, rng.next_u64(), std::move(name));
    }
    case Family::kFused: {
      FusedParams p;
      p.image = rng.next_below(2) == 1;
      p.taps = pick(rng, {4, 8, 16});
      p.length = pick(rng, {96, 128, 192, 256});
      p.width = pick(rng, {12, 16, 24});
      p.height = pick(rng, {12, 16, 24});
      return make_fused_scenario(p, rng.next_u64(), std::move(name));
    }
    case Family::kRle: {
      RleParams p;
      p.length = pick(rng, {48, 64, 96, 128, 192, 256});
      p.levels = pick(rng, {2, 3, 4, 5, 8});
      return make_rle_scenario(p, rng.next_u64(), std::move(name));
    }
    case Family::kCalls: {
      CallsParams p;
      p.width = pick(rng, {8, 12, 16, 24, 32});
      p.height = pick(rng, {8, 12, 16, 24});
      p.tile_base = pick(rng, {2, 3, 4});
      p.bias = pick(rng, {-24, -8, 0, 8, 24});
      return make_calls_scenario(p, rng.next_u64(), std::move(name));
    }
    case Family::kFft: {
      FftParams p;
      p.points = pick(rng, {8, 16, 32, 64});
      p.qbits = pick(rng, {12, 13, 14});
      p.window = rng.next_below(2) == 1;
      return make_fft_scenario(p, rng.next_u64(), std::move(name));
    }
  }
  throw std::invalid_argument("unknown Family");
}

std::vector<Workload> corpus(const CorpusSpec& spec) {
  if (spec.count == 0) {
    throw std::invalid_argument("CorpusSpec.count must be at least 1");
  }
  if (spec.families.empty()) {
    throw std::invalid_argument("CorpusSpec.families must not be empty");
  }
  std::vector<Workload> out;
  out.reserve(spec.count);
  for (std::size_t i = 0; i < spec.count; ++i) {
    out.push_back(corpus_scenario(spec, i));
  }
  return out;
}

const std::vector<Workload>& default_corpus() {
  static const std::vector<Workload> shared = corpus();
  return shared;
}

CorpusSpec env_corpus_spec() {
  CorpusSpec spec;
  if (const char* count = std::getenv("ASIPFB_FUZZ_COUNT")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(count, &end, 10);
    if (end != count && *end == '\0' && v >= 1) {
      spec.count = static_cast<std::size_t>(v);
    }
  }
  if (const char* seed = std::getenv("ASIPFB_FUZZ_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(seed, &end, 10);
    if (end != seed && *end == '\0') {
      spec.seed = static_cast<std::uint64_t>(v);
    }
  }
  return spec;
}

std::string_view family_of(std::string_view scenario_name) {
  if (scenario_name.rfind("gen_", 0) != 0) return {};
  const auto family_end = scenario_name.find('_', 4);
  if (family_end == std::string_view::npos) return {};
  return scenario_name.substr(4, family_end - 4);
}

bool oracle_matches(
    const Workload& w, std::int32_t exit_code,
    const std::map<std::string, std::vector<std::int32_t>>& outputs) {
  if (w.expected.empty() || !w.expected_exit.has_value()) return false;
  if (exit_code != *w.expected_exit) return false;
  for (const auto& [global, words] : w.expected) {
    const auto it = outputs.find(global);
    if (it == outputs.end() || it->second != words) return false;
  }
  return true;
}

const Workload& any_workload(const std::string& name) {
  for (const auto& w : suite()) {
    if (w.name == name) return w;
  }
  // Only corpus names can match below; skip the 96-scenario scan otherwise.
  if (name.rfind("gen_", 0) == 0) {
    for (const auto& w : default_corpus()) {
      if (w.name == name) return w;
    }
  }
  throw std::out_of_range("no such workload or generated scenario: " + name);
}

}  // namespace asipfb::wl
