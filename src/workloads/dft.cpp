// dft — direct discrete Fourier transform of an integer stream.
// Paper Table 1: 15 lines, stream of 256 random integer values.
#include "support/rng.hpp"
#include "workloads/programs.hpp"

namespace asipfb::wl {

namespace {

const char* const kSource = R"(
/* Discrete Fourier transform (direct form) of a 256-point integer stream. */
int x[256];
float xr[256];
float xi[256];
float checksum;

int main() {
  int k;
  int n;
  for (k = 0; k < 256; k++) {
    float sr = 0.0;
    float si = 0.0;
    for (n = 0; n < 256; n++) {
      float a = 0.0245436926 * (k * n);
      sr += x[n] * cosf(a);
      si -= x[n] * sinf(a);
    }
    xr[k] = sr;
    xi[k] = si;
  }
  float s = 0.0;
  for (k = 0; k < 256; k++) {
    s += xr[k] * xr[k] + xi[k] * xi[k];
  }
  checksum = s;
  return (int)(s * 0.000001);
}
)";

}  // namespace

Workload make_dft() {
  Workload w;
  w.name = "dft";
  w.description = "Discrete fast fourier transform";
  w.data_description = "Stream of 256 random integer values";
  w.source = kSource;
  Rng rng(0x100a);
  w.input.add("x", rng.int_array(256, -128, 127));
  w.outputs = {"xr", "xi", "checksum"};
  return w;
}

}  // namespace asipfb::wl
