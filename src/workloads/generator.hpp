// Deterministic, seed-driven workload generator: parameterized families of
// the Table-1 kernels, scaled far beyond the paper's fixed 12-program
// suite.
//
// Each family is a BenchC program *template* over a small parameter struct
// (tap counts, transform lengths, image dimensions, datatype and
// accumulator widths, fused stage combinations).  A generated scenario
// carries everything a differential check needs:
//
//   * byte-deterministic BenchC source (same params + seed => identical
//     text, on every platform),
//   * deterministic input bindings drawn from the seeded Rng, and
//   * reference outputs computed by a plain-C++ oracle that mirrors the
//     emitted program statement by statement (raw i32 words, floats
//     bit-cast — directly comparable to ExecutionResult::outputs).
//
// corpus(CorpusSpec) fans a spec out into N scenarios, round-robin over
// the requested families, so pipeline::run_stages()/sweep() and the bench
// drivers can serve a 50-200 workload population instead of twelve.  The
// per-family make_*_scenario() entry points are exposed for tests and
// tools that want one scenario with hand-picked parameters.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "workloads/suite.hpp"

namespace asipfb::wl {

/// The parameterized kernel families the generator can emit.
enum class Family : std::uint8_t {
  kFir,     ///< N-tap FIR filter; float or integer datapath (fir/sewha).
  kIir,     ///< Biquad-cascade IIR filter, 1..N sections (iir).
  kDft,     ///< Direct DFT of an integer stream, parameterized length (dft).
  kConv2d,  ///< 3x3 image convolution; edge/smooth-style postludes.
  kHistEq,  ///< Histogram equalization, parameterized dims/levels (flatten).
  kFused,   ///< Two-stage pipelines: fir->histeq and conv2d->histeq.
  kRle,     ///< Quantize + run-length codec: data-dependent branches and
            ///< irregular trip counts (compress/pse territory).
  kCalls,   ///< Tiled image statistics through a multi-function call graph
            ///< with runtime-computed loop bounds (flatten territory).
  kFft,     ///< Iterative radix-2 fixed-point FFT with per-stage scaling
            ///< (intfft territory, integer datapath).
};

/// Lower-case family name ("fir", "iir", ...); stable, used in scenario names.
[[nodiscard]] std::string_view to_string(Family family);

/// All nine generator families, in enum order.
[[nodiscard]] const std::vector<Family>& all_families();

// --- Per-family parameters --------------------------------------------------

/// FIR family: y[n] = sum_k h[k] x[n-k], then (integer datapath only)
/// arithmetic shift + saturation — the datatype/accumulator-width axis.
struct FirParams {
  int taps = 8;         ///< Filter length, >= 1.
  int length = 128;     ///< Signal length, >= taps.
  bool integer = false; ///< false: f32 datapath; true: i32 datapath.
  int acc_shift = 5;    ///< Integer only: accumulator normalization shift, 0..31.
  int sat_bits = 16;    ///< Integer only: saturate to [-2^(b-1), 2^(b-1)-1]; 0 = off.
};

/// IIR family: direct-form II biquad cascade with stable generated poles.
struct IirParams {
  int sections = 2;  ///< Biquad sections, >= 1.
  int length = 128;  ///< Signal length, >= 1.
};

/// DFT family: direct O(K^2) transform of a K-point integer stream.
struct DftParams {
  int points = 24;  ///< Transform length, >= 2.
};

/// Conv2d family: 3x3 convolution over the image interior, followed by
/// either an abs+threshold postlude (edge-style, `threshold == true`) or an
/// arithmetic-shift normalization with a 255 clamp (smooth-style).
struct Conv2dParams {
  int width = 16;          ///< Image width, >= 4.
  int height = 16;         ///< Image height, >= 4.
  int kernel = 0;          ///< Index into the fixed 3x3 kernel table, see kConvKernelCount.
  bool threshold = true;   ///< true: |acc| > thresh ? 255 : 0; false: acc >> shift.
  int thresh = 160;        ///< Threshold for the edge-style postlude.
  int shift = 4;           ///< Normalization shift for the smooth-style postlude.
};

/// Number of kernels in the conv2d kernel table (sobel-x, sobel-y,
/// laplacian, gaussian, box, sharpen).
inline constexpr int kConvKernelCount = 6;

/// HistEq family: histogram equalization of a width x height image whose
/// pixels span [0, levels).
struct HistEqParams {
  int width = 16;    ///< Image width, >= 1.
  int height = 16;   ///< Image height, >= 1.
  int levels = 256;  ///< Gray levels (histogram size), 2..256.
};

/// Fused family: two kernels in one program, the corpus's multi-stage axis.
struct FusedParams {
  /// false: integer FIR -> saturate to [0,255] -> histogram equalization
  ///        (stream pipeline, "fir_histeq");
  /// true:  3x3 non-negative convolution -> clamp -> histogram equalization
  ///        (image pipeline, "conv_histeq").
  bool image = false;
  int taps = 8;     ///< Stream pipeline: FIR taps.
  int length = 128; ///< Stream pipeline: signal length, >= taps.
  int width = 16;   ///< Image pipeline: image width, >= 4.
  int height = 16;  ///< Image pipeline: image height, >= 4.
};

/// RLE family: quantize an integer stream into `levels` buckets through a
/// data-dependent threshold chain, run-length encode it (the inner scan's
/// trip count depends entirely on the data), decode it back, and verify.
/// Exercises data-dependent branching and irregular trip counts.
struct RleParams {
  int length = 64;  ///< Stream length, >= 2.
  int levels = 4;   ///< Quantization buckets, 2..8.
};

/// Calls family: per-tile image statistics computed through a multi-function
/// call graph (main -> tile_stat -> region_sum, plus a clamp helper), with
/// the tile size — and therefore every loop bound — computed at runtime from
/// the image data itself.
struct CallsParams {
  int width = 16;    ///< Image width, >= 4.
  int height = 16;   ///< Image height, >= 4.
  int tile_base = 3; ///< Minimum tile side, 2..8 (runtime adds img[0] & 3).
  int bias = 8;      ///< Contrast bias added during per-pixel remapping, -64..64.
};

/// FFT family: iterative radix-2 decimation-in-time fixed-point FFT with a
/// bit-reversal permutation (intfft's while-loop idiom), Qn twiddle tables
/// baked into the source, and >>1 scaling per butterfly stage.  Entirely
/// integer, so the oracle is exact by construction.
struct FftParams {
  int points = 16;     ///< Transform length; power of two in [4, 256].
  int qbits = 14;      ///< Twiddle fixed-point fraction bits, 8..14.
  bool window = false; ///< Apply a triangular integer window before the FFT.
};

// --- One-scenario entry points ----------------------------------------------
// Each returns a complete Workload: source, inputs drawn from Rng(data_seed),
// oracle-filled `expected` for every listed output global, and
// `expected_exit`.  Throws std::invalid_argument on out-of-range parameters.

[[nodiscard]] Workload make_fir_scenario(const FirParams& p,
                                         std::uint64_t data_seed,
                                         std::string name);
[[nodiscard]] Workload make_iir_scenario(const IirParams& p,
                                         std::uint64_t data_seed,
                                         std::string name);
[[nodiscard]] Workload make_dft_scenario(const DftParams& p,
                                         std::uint64_t data_seed,
                                         std::string name);
[[nodiscard]] Workload make_conv2d_scenario(const Conv2dParams& p,
                                            std::uint64_t data_seed,
                                            std::string name);
[[nodiscard]] Workload make_histeq_scenario(const HistEqParams& p,
                                            std::uint64_t data_seed,
                                            std::string name);
[[nodiscard]] Workload make_fused_scenario(const FusedParams& p,
                                           std::uint64_t data_seed,
                                           std::string name);
[[nodiscard]] Workload make_rle_scenario(const RleParams& p,
                                         std::uint64_t data_seed,
                                         std::string name);
[[nodiscard]] Workload make_calls_scenario(const CallsParams& p,
                                           std::uint64_t data_seed,
                                           std::string name);
[[nodiscard]] Workload make_fft_scenario(const FftParams& p,
                                         std::uint64_t data_seed,
                                         std::string name);

// --- Corpus -----------------------------------------------------------------

/// What corpus() should generate.  The default spec yields 96 scenarios,
/// 16 per family — every field participates in the derivation, so two
/// distinct specs produce distinct corpora and equal specs byte-identical
/// ones.
struct CorpusSpec {
  std::uint64_t seed = 0x5EEDC0DE5EEDC0DEull;  ///< Master seed.
  std::size_t count = 96;                      ///< Scenarios to generate, >= 1.
  std::vector<Family> families = all_families();  ///< Round-robin pool.
};

/// Scenario `index` of `spec`, exactly as corpus(spec)[index] would build
/// it — the random-access form batch tools use to shard generation.
[[nodiscard]] Workload corpus_scenario(const CorpusSpec& spec, std::size_t index);

/// The full generated corpus for `spec`: `spec.count` scenarios named
/// "gen_<family>_<index>", round-robin over `spec.families`, in index
/// order.  Deterministic: a pure function of the spec (no global state, no
/// ambient randomness), byte-identical across runs, platforms, and thread
/// counts.  Throws std::invalid_argument for an empty family list or a
/// zero count.
[[nodiscard]] std::vector<Workload> corpus(const CorpusSpec& spec = {});

/// Memoized corpus({}) — the shared default population for bench drivers
/// and tests (generation itself is cheap; the oracle simulations are not
/// free, so share one copy per process).
[[nodiscard]] const std::vector<Workload>& default_corpus();

/// The default CorpusSpec with `seed` and `count` overridden by the
/// ASIPFB_FUZZ_SEED / ASIPFB_FUZZ_COUNT environment variables when set
/// (parsed as base-10; invalid or empty values are ignored).  The one
/// knob shared by the per-build differential test and the gauntlet, so
/// both drive the same harness instead of diverging copies.
[[nodiscard]] CorpusSpec env_corpus_spec();

/// Lookup across both populations: the Table-1 suite first, then the
/// default corpus ("gen_<family>_<index>" names).  Lets name-driven tools
/// (fir_explorer, coverage_study) accept generated scenarios.  Throws
/// std::out_of_range for unknown names.
[[nodiscard]] const Workload& any_workload(const std::string& name);

/// The family segment of a generated scenario name — the single owner of
/// the "gen_<family>_<index>" format (scenario_name() in generator.cpp is
/// its inverse).  Empty for names the generator did not produce.
[[nodiscard]] std::string_view family_of(std::string_view scenario_name);

/// True when a simulation of `w` reproduced the oracle reference exactly:
/// expected_exit engaged and equal to `exit_code`, and every
/// Workload::expected global present in `outputs` with identical words.
/// The one comparison rule shared by bench_corpus, asipfb_cli --corpus,
/// and corpus_tour.
[[nodiscard]] bool oracle_matches(
    const Workload& w, std::int32_t exit_code,
    const std::map<std::string, std::vector<std::int32_t>>& outputs);

}  // namespace asipfb::wl
