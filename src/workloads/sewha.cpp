// sewha — Sewha's symmetric integer FIR filter with output saturation.
// Paper Table 1: 36 lines, stream of 100 random integer values.
#include "support/rng.hpp"
#include "workloads/programs.hpp"

namespace asipfb::wl {

namespace {

const char* const kSource = R"(
/* Sewha's (FIR) filter: 8-tap symmetric integer FIR with saturation. */
int x[100];
int y[100];
int checksum;

int main() {
  int n;
  for (n = 7; n < 100; n++) {
    int acc = (x[n] + x[n - 7]) * 3;
    acc += (x[n - 1] + x[n - 6]) * 11;
    acc += (x[n - 2] + x[n - 5]) * 21;
    acc += (x[n - 3] + x[n - 4]) * 26;
    acc = acc >> 5;
    if (acc > 255) acc = 255;
    if (acc < -256) acc = -256;
    y[n] = acc;
  }

  int s = 0;
  for (n = 0; n < 100; n++) {
    s += y[n];
  }
  checksum = s;
  return s;
}
)";

}  // namespace

Workload make_sewha() {
  Workload w;
  w.name = "sewha";
  w.description = "Sewha's (FIR) filter";
  w.data_description = "Stream of 100 random integer values";
  w.source = kSource;
  Rng rng(0x1009);
  w.input.add("x", rng.int_array(100, -128, 127));
  w.outputs = {"y", "checksum"};
  return w;
}

}  // namespace asipfb::wl
