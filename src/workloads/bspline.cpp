// bspline — cubic B-spline smoothing filter over an integer stream.
// Paper Table 1: 30 lines, stream of 256 random integer values.
#include "support/rng.hpp"
#include "workloads/programs.hpp"

namespace asipfb::wl {

namespace {

const char* const kSource = R"(
/* B-spline (FIR) smoothing filter: (x[n-1] + 4 x[n] + x[n+1]) / 6,
   computed in fixed point as t * 43 >> 8 (43/256 ~ 1/5.95). */
int x[256];
int y[256];
int checksum;

int main() {
  int n;
  y[0] = x[0];
  y[255] = x[255];
  for (n = 1; n < 255; n++) {
    int s = x[n - 1] + x[n + 1];
    int t = s + (x[n] << 2);
    y[n] = (t * 43) >> 8;
  }

  int acc = 0;
  for (n = 0; n < 256; n++) {
    acc += y[n];
  }
  checksum = acc;
  return acc;
}
)";

}  // namespace

Workload make_bspline() {
  Workload w;
  w.name = "bspline";
  w.description = "B Spline (FIR) filter";
  w.data_description = "Stream of 256 random integer values";
  w.source = kSource;
  Rng rng(0x100b);
  w.input.add("x", rng.int_array(256, -128, 127));
  w.outputs = {"y", "checksum"};
  return w;
}

}  // namespace asipfb::wl
