// intfft — 2:1 interpolation using a forward FFT, spectrum zero-stuffing,
// and an inverse FFT.
// Paper Table 1: 280 lines, random array of 100 floating point values.
#include "support/rng.hpp"
#include "workloads/programs.hpp"

namespace asipfb::wl {

namespace {

const char* const kSource = R"(
/* Interpolate 2:1 using FFT and inverse FFT. */
float x[100];
float re[256];
float im[256];
float yi[256];
float checksum;

void fft(int n, int dir) {
  int i;
  int j = 0;
  for (i = 0; i < n - 1; i++) {
    if (i < j) {
      float tr = re[i];
      re[i] = re[j];
      re[j] = tr;
      float ti = im[i];
      im[i] = im[j];
      im[j] = ti;
    }
    int k = n >> 1;
    while (k <= j) {
      j -= k;
      k >>= 1;
    }
    j += k;
  }

  int len;
  for (len = 2; len <= n; len <<= 1) {
    float ang = dir * 6.28318530718 / len;
    float wr = cosf(ang);
    float wi = sinf(ang);
    int base;
    for (base = 0; base < n; base += len) {
      float cr = 1.0;
      float ci = 0.0;
      int half = len >> 1;
      int p;
      for (p = 0; p < half; p++) {
        int a = base + p;
        int b = a + half;
        float tr = re[b] * cr - im[b] * ci;
        float ti = re[b] * ci + im[b] * cr;
        re[b] = re[a] - tr;
        im[b] = im[a] - ti;
        re[a] += tr;
        im[a] += ti;
        float nr = cr * wr - ci * wi;
        ci = cr * wi + ci * wr;
        cr = nr;
      }
    }
  }
}

int main() {
  int i;
  for (i = 0; i < 256; i++) {
    re[i] = 0.0;
    im[i] = 0.0;
  }
  for (i = 0; i < 100; i++) {
    re[i] = x[i];
  }

  /* Forward 128-point transform of the zero-padded input. */
  fft(128, -1);

  /* Zero-stuff the spectrum into 256 bins: keep the low half at the
     bottom, move the high half to the top, clear the middle. */
  for (i = 127; i >= 64; i--) {
    re[i + 128] = re[i];
    im[i + 128] = im[i];
    re[i] = 0.0;
    im[i] = 0.0;
  }

  /* Inverse 256-point transform; scale by 2/128 (interpolation gain over
     forward-transform length). */
  fft(256, 1);
  for (i = 0; i < 256; i++) {
    yi[i] = re[i] * 0.015625;
  }

  float s = 0.0;
  for (i = 0; i < 256; i++) {
    s += yi[i] * yi[i];
  }
  checksum = s;
  return (int)s;
}
)";

}  // namespace

Workload make_intfft() {
  Workload w;
  w.name = "intfft";
  w.description = "Interpolate 2:1 using FFT and inverse FFT";
  w.data_description = "Random array of 100 floating point values";
  w.source = kSource;
  Rng rng(0x1004);
  w.input.add("x", rng.float_array(100, -1.0f, 1.0f));
  w.outputs = {"yi", "checksum"};
  return w;
}

}  // namespace asipfb::wl
