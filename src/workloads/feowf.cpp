// feowf — fifth-order elliptic wave filter over an integer stream.
// Paper Table 1: 32 lines, stream of 256 random integer values.
#include "support/rng.hpp"
#include "workloads/programs.hpp"

namespace asipfb::wl {

namespace {

const char* const kSource = R"(
/* Fifth order elliptic wave filter (fixed-point adaptor network). */
int x[256];
int y[256];
int s1;
int s2;
int s3;
int s4;
int s5;
int checksum;

int main() {
  int n;
  for (n = 0; n < 256; n++) {
    int in = x[n];
    int t1 = in + s1;
    int t2 = (t1 * 7) >> 4;
    int t3 = t2 + s2;
    int t4 = (t3 * 11) >> 4;
    int t5 = t4 + s3;
    int t6 = t5 + t2;
    int t7 = (t6 * 13) >> 5;
    int t8 = t7 + s4;
    int t9 = (t8 * 9) >> 4;
    int t10 = t9 + s5;
    if (t10 > 32767) t10 = 32767;
    if (t10 < -32768) t10 = -32768;
    s1 = t3 - t9;
    s2 = t5;
    s3 = t8 - t1;
    s4 = t10 >> 1;
    s5 = t7 + t4;
    y[n] = t10;
  }

  int s = 0;
  for (n = 0; n < 256; n++) {
    s += y[n];
  }
  checksum = s;
  return s;
}
)";

}  // namespace

Workload make_feowf() {
  Workload w;
  w.name = "feowf";
  w.description = "Fifth order elliptic wave filter";
  w.data_description = "Stream of 256 random integer values";
  w.source = kSource;
  Rng rng(0x100c);
  w.input.add("x", rng.int_array(256, -128, 127));
  w.outputs = {"y", "checksum"};
  return w;
}

}  // namespace asipfb::wl
