#include "frontend/compile.hpp"

#include "frontend/lower.hpp"
#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "ir/verifier.hpp"

namespace asipfb::fe {

ir::Module compile_benchc(std::string_view source, std::string module_name) {
  DiagnosticEngine diags;
  TranslationUnit unit = parse(source, diags);
  diags.check();
  const SemaResult sema = analyze(unit, diags);
  diags.check();
  ir::Module module = lower(unit, sema, std::move(module_name));
  ir::verify_or_throw(module);
  return module;
}

}  // namespace asipfb::fe
