#include "frontend/sema.hpp"

#include <cmath>
#include <map>
#include <memory>

namespace asipfb::fe {

namespace {

using ir::Type;

/// Lexically scoped symbol table.
class Scopes {
public:
  void push() { scopes_.emplace_back(); }
  void pop() { scopes_.pop_back(); }

  /// Declares in the innermost scope; returns false if already present there.
  bool declare(const std::string& name, VarSym* sym) {
    return scopes_.back().emplace(name, sym).second;
  }

  [[nodiscard]] VarSym* lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    return nullptr;
  }

private:
  std::vector<std::map<std::string, VarSym*>> scopes_;
};

class SemaPass {
public:
  SemaPass(TranslationUnit& unit, DiagnosticEngine& diags)
      : unit_(unit), diags_(diags) {}

  SemaResult run() {
    collect_signatures();
    scopes_.push();  // Global scope.
    check_globals();
    for (std::size_t i = 0; i < unit_.functions.size(); ++i) {
      check_function(unit_.functions[i], result_.functions[i]);
    }
    scopes_.pop();
    return std::move(result_);
  }

private:
  void error(SourceLoc loc, std::string message) {
    diags_.error(loc, std::move(message));
  }

  void collect_signatures() {
    std::map<std::string, int> seen;
    for (const auto& fn : unit_.functions) {
      FunctionSig sig;
      sig.name = fn.name;
      sig.return_type = fn.return_type;
      for (const auto& [pname, ptype] : fn.params) {
        (void)pname;
        sig.param_types.push_back(ptype);
      }
      if (!seen.emplace(fn.name, 1).second) {
        error(fn.loc, "duplicate function '" + fn.name + "'");
      }
      result_.functions.push_back(std::move(sig));
    }
  }

  void check_globals() {
    for (auto& g : unit_.globals) {
      VarSym* sym = unit_.make_symbol();
      sym->name = g.name;
      sym->type = g.type;
      sym->is_array = g.is_array;
      sym->array_size = g.is_array ? g.array_size : 1;
      sym->storage = Storage::Global;
      g.sym = sym;
      if (!scopes_.declare(g.name, sym)) {
        error(g.loc, "duplicate global '" + g.name + "'");
      }
      if (g.is_array && g.array_size <= 0) {
        error(g.loc, "array size must be positive");
      }
      if (!g.is_array && g.init.size() > 1) {
        error(g.loc, "scalar initializer list");
      }
      if (g.is_array &&
          g.init.size() > static_cast<std::size_t>(g.array_size)) {
        error(g.loc, "too many initializers for '" + g.name + "'");
      }
      for (const auto& init : g.init) {
        check_expr(*init);
        if (!const_eval(*init)) {
          error(init->loc, "global initializer must be a constant expression");
        }
      }
    }
  }

  void check_function(FunctionDecl& fn, const FunctionSig& sig) {
    current_return_ = sig.return_type;
    loop_depth_ = 0;
    scopes_.push();
    for (const auto& [pname, ptype] : fn.params) {
      VarSym* sym = unit_.make_symbol();
      sym->name = pname;
      sym->type = ptype;
      sym->storage = Storage::Param;
      fn.param_syms.push_back(sym);
      if (!scopes_.declare(pname, sym)) {
        error(fn.loc, "duplicate parameter '" + pname + "' in '" + fn.name + "'");
      }
    }
    check_stmt(*fn.body);
    scopes_.pop();
  }

  void check_stmt(Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::Block:
        scopes_.push();
        for (auto& s : stmt.body) check_stmt(*s);
        scopes_.pop();
        break;
      case StmtKind::Decl: {
        VarSym* sym = unit_.make_symbol();
        sym->name = stmt.decl_name;
        sym->type = stmt.decl_type;
        sym->is_array = stmt.decl_is_array;
        sym->array_size = stmt.decl_is_array ? stmt.decl_array_size : 1;
        sym->storage = Storage::Local;
        stmt.sym = sym;
        if (!scopes_.declare(stmt.decl_name, sym)) {
          error(stmt.loc, "duplicate variable '" + stmt.decl_name + "'");
        }
        if (stmt.decl_is_array && stmt.decl_array_size <= 0) {
          error(stmt.loc, "array size must be positive");
        }
        if (stmt.decl_init) {
          if (stmt.decl_is_array) {
            error(stmt.loc, "local array initializers are not supported");
          } else {
            check_expr(*stmt.decl_init);
            coerce(stmt.decl_init, sym->type);
          }
        }
        break;
      }
      case StmtKind::ExprStmt:
        check_expr(*stmt.expr);
        break;
      case StmtKind::If:
        check_condition(stmt.expr);
        check_stmt(*stmt.body[0]);
        if (stmt.body.size() > 1) check_stmt(*stmt.body[1]);
        break;
      case StmtKind::While:
        check_condition(stmt.expr);
        ++loop_depth_;
        check_stmt(*stmt.body[0]);
        --loop_depth_;
        break;
      case StmtKind::For:
        scopes_.push();  // For-init declarations scope over the loop.
        if (stmt.init_stmt) check_stmt(*stmt.init_stmt);
        if (stmt.expr) check_condition(stmt.expr);
        if (stmt.expr2) check_expr(*stmt.expr2);
        ++loop_depth_;
        check_stmt(*stmt.body[0]);
        --loop_depth_;
        scopes_.pop();
        break;
      case StmtKind::Return:
        if (stmt.expr) {
          check_expr(*stmt.expr);
          if (current_return_ == Type::Void) {
            error(stmt.loc, "returning a value from a void function");
          } else {
            coerce(stmt.expr, current_return_);
          }
        } else if (current_return_ != Type::Void) {
          error(stmt.loc, "missing return value");
        }
        break;
      case StmtKind::Break:
        if (loop_depth_ == 0) error(stmt.loc, "'break' outside a loop");
        break;
      case StmtKind::Continue:
        if (loop_depth_ == 0) error(stmt.loc, "'continue' outside a loop");
        break;
    }
  }

  /// Conditions must be scalar; float conditions are allowed (compared
  /// against zero during lowering).
  void check_condition(ExprPtr& expr) { check_expr(*expr); }

  /// Wraps `expr` in a cast when its type differs from `target`.
  void coerce(ExprPtr& expr, Type target) {
    if (expr->type == target) return;
    auto cast = std::make_unique<Expr>();
    cast->kind = ExprKind::Cast;
    cast->loc = expr->loc;
    cast->cast_type = target;
    cast->type = target;
    cast->children.push_back(std::move(expr));
    expr = std::move(cast);
  }

  void check_expr(Expr& expr) {
    switch (expr.kind) {
      case ExprKind::IntLit:
        expr.type = Type::I32;
        break;
      case ExprKind::FloatLit:
        expr.type = Type::F32;
        break;
      case ExprKind::Var: {
        VarSym* sym = scopes_.lookup(expr.name);
        if (sym == nullptr) {
          error(expr.loc, "unknown variable '" + expr.name + "'");
          expr.type = Type::I32;
          break;
        }
        if (sym->is_array) {
          error(expr.loc, "array '" + expr.name + "' used without an index");
        }
        expr.sym = sym;
        expr.type = sym->type;
        break;
      }
      case ExprKind::Index: {
        VarSym* sym = scopes_.lookup(expr.name);
        if (sym == nullptr) {
          error(expr.loc, "unknown array '" + expr.name + "'");
          expr.type = Type::I32;
        } else if (!sym->is_array) {
          error(expr.loc, "'" + expr.name + "' is not an array");
          expr.type = sym->type;
        } else {
          expr.sym = sym;
          expr.type = sym->type;
        }
        check_expr(*expr.children[0]);
        if (expr.children[0]->type != Type::I32) {
          error(expr.children[0]->loc, "array index must be an integer");
        }
        break;
      }
      case ExprKind::Call:
        check_call(expr);
        break;
      case ExprKind::Unary:
        check_expr(*expr.children[0]);
        if (expr.op == Tok::Minus) {
          expr.type = expr.children[0]->type;
        } else {  // ! and ~ are integer-only.
          if (expr.children[0]->type != Type::I32) {
            error(expr.loc, "operator requires an integer operand");
          }
          expr.type = Type::I32;
        }
        break;
      case ExprKind::Binary:
        check_binary(expr);
        break;
      case ExprKind::Assign:
        check_assign(expr);
        break;
      case ExprKind::IncDec: {
        Expr& target = *expr.children[0];
        check_expr(target);
        if (target.kind != ExprKind::Var && target.kind != ExprKind::Index) {
          error(expr.loc, "'++'/'--' requires a variable or array element");
        }
        expr.type = target.type;
        break;
      }
      case ExprKind::Cast:
        check_expr(*expr.children[0]);
        expr.type = expr.cast_type;
        break;
    }
  }

  void check_call(Expr& expr) {
    for (auto& arg : expr.children) check_expr(*arg);

    const ir::IntrinsicKind intrin = builtin_intrinsic(expr.name);
    if (intrin != ir::IntrinsicKind::None) {
      expr.builtin = static_cast<std::int32_t>(intrin);
      if (expr.children.size() != 1) {
        error(expr.loc, "builtin '" + expr.name + "' takes one argument");
        expr.type = Type::F32;
        return;
      }
      const bool integer = intrin == ir::IntrinsicKind::IAbs;
      coerce(expr.children[0], integer ? Type::I32 : Type::F32);
      expr.type = integer ? Type::I32 : Type::F32;
      return;
    }

    for (std::size_t i = 0; i < result_.functions.size(); ++i) {
      const auto& sig = result_.functions[i];
      if (sig.name != expr.name) continue;
      expr.callee_index = static_cast<std::int32_t>(i);
      if (expr.children.size() != sig.param_types.size()) {
        error(expr.loc, "call to '" + expr.name + "' with wrong argument count");
        expr.type = sig.return_type == Type::Void ? Type::I32 : sig.return_type;
        return;
      }
      for (std::size_t a = 0; a < expr.children.size(); ++a) {
        coerce(expr.children[a], sig.param_types[a]);
      }
      expr.type = sig.return_type == Type::Void ? Type::I32 : sig.return_type;
      if (sig.return_type == Type::Void) expr.type = Type::I32;
      return;
    }
    error(expr.loc, "unknown function '" + expr.name + "'");
    expr.type = Type::I32;
  }

  [[nodiscard]] static bool int_only_op(Tok op) {
    switch (op) {
      case Tok::Percent: case Tok::Shl: case Tok::Shr:
      case Tok::Amp: case Tok::Pipe: case Tok::Caret:
      case Tok::AmpAmp: case Tok::PipePipe:
        return true;
      default:
        return false;
    }
  }

  void check_binary(Expr& expr) {
    check_expr(*expr.children[0]);
    check_expr(*expr.children[1]);
    const Type lt = expr.children[0]->type;
    const Type rt = expr.children[1]->type;

    if (int_only_op(expr.op)) {
      if (lt != Type::I32 || rt != Type::I32) {
        error(expr.loc, "operator requires integer operands");
      }
      expr.type = Type::I32;
      return;
    }

    // Usual arithmetic conversion: float wins.
    const Type common = (lt == Type::F32 || rt == Type::F32) ? Type::F32 : Type::I32;
    coerce(expr.children[0], common);
    coerce(expr.children[1], common);

    switch (expr.op) {
      case Tok::Eq: case Tok::Ne: case Tok::Lt: case Tok::Le:
      case Tok::Gt: case Tok::Ge:
        expr.type = Type::I32;  // Comparisons yield 0/1.
        break;
      default:
        expr.type = common;
        break;
    }
  }

  void check_assign(Expr& expr) {
    Expr& lhs = *expr.children[0];
    check_expr(lhs);
    check_expr(*expr.children[1]);
    if (lhs.kind != ExprKind::Var && lhs.kind != ExprKind::Index) {
      error(expr.loc, "assignment target is not assignable");
      expr.type = Type::I32;
      return;
    }
    // Compound assignments with int-only operators need an integer LHS.
    const Tok op = expr.op;
    const bool compound_int_only =
        op == Tok::PercentAssign || op == Tok::ShlAssign || op == Tok::ShrAssign ||
        op == Tok::AndAssign || op == Tok::OrAssign || op == Tok::XorAssign;
    if (compound_int_only &&
        (lhs.type != Type::I32 || expr.children[1]->type != Type::I32)) {
      error(expr.loc, "compound operator requires integer operands");
    }
    // RHS converts to the variable's type. For compound float ops the
    // arithmetic is done in the LHS type during lowering.
    coerce(expr.children[1], lhs.type);
    expr.type = lhs.type;
  }

  TranslationUnit& unit_;
  DiagnosticEngine& diags_;
  SemaResult result_;
  Scopes scopes_;
  Type current_return_ = Type::Void;
  int loop_depth_ = 0;
};

}  // namespace

SemaResult analyze(TranslationUnit& unit, DiagnosticEngine& diags) {
  return SemaPass(unit, diags).run();
}

std::optional<ConstValue> const_eval(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::IntLit:
      return ConstValue{Type::I32, static_cast<double>(expr.int_val)};
    case ExprKind::FloatLit:
      return ConstValue{Type::F32, expr.float_val};
    case ExprKind::Unary: {
      const auto inner = const_eval(*expr.children[0]);
      if (!inner) return std::nullopt;
      if (expr.op == Tok::Minus) return ConstValue{inner->type, -inner->value};
      return std::nullopt;
    }
    case ExprKind::Cast: {
      const auto inner = const_eval(*expr.children[0]);
      if (!inner) return std::nullopt;
      if (expr.cast_type == Type::I32) {
        return ConstValue{Type::I32, static_cast<double>(inner->as_i32())};
      }
      return ConstValue{Type::F32, static_cast<double>(inner->as_f32())};
    }
    case ExprKind::Binary: {
      const auto lhs = const_eval(*expr.children[0]);
      const auto rhs = const_eval(*expr.children[1]);
      if (!lhs || !rhs) return std::nullopt;
      const Type type =
          (lhs->type == Type::F32 || rhs->type == Type::F32) ? Type::F32 : Type::I32;
      double value = 0.0;
      switch (expr.op) {
        case Tok::Plus: value = lhs->value + rhs->value; break;
        case Tok::Minus: value = lhs->value - rhs->value; break;
        case Tok::Star: value = lhs->value * rhs->value; break;
        case Tok::Slash:
          if (rhs->value == 0.0) return std::nullopt;
          value = type == Type::I32
                      ? static_cast<double>(lhs->as_i32() / rhs->as_i32())
                      : lhs->value / rhs->value;
          break;
        default:
          return std::nullopt;
      }
      if (type == Type::I32) value = static_cast<double>(static_cast<std::int32_t>(value));
      return ConstValue{type, value};
    }
    default:
      return std::nullopt;
  }
}

ir::IntrinsicKind builtin_intrinsic(const std::string& name) {
  using ir::IntrinsicKind;
  if (name == "sqrtf" || name == "sqrt") return IntrinsicKind::Sqrt;
  if (name == "sinf" || name == "sin") return IntrinsicKind::Sin;
  if (name == "cosf" || name == "cos") return IntrinsicKind::Cos;
  if (name == "fabsf" || name == "fabs") return IntrinsicKind::FAbs;
  if (name == "abs") return IntrinsicKind::IAbs;
  if (name == "expf" || name == "exp") return IntrinsicKind::Exp;
  if (name == "logf" || name == "log") return IntrinsicKind::Log;
  if (name == "floorf" || name == "floor") return IntrinsicKind::Floor;
  return IntrinsicKind::None;
}

}  // namespace asipfb::fe
