// Tokens of BenchC, the C subset in which the benchmark suite is written.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/diagnostics.hpp"

namespace asipfb::fe {

enum class Tok : std::uint8_t {
  End,
  // Literals and identifiers.
  IntLit, FloatLit, Ident,
  // Keywords.
  KwInt, KwFloat, KwVoid, KwIf, KwElse, KwWhile, KwFor, KwReturn,
  KwBreak, KwContinue,
  // Punctuation.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semicolon,
  // Operators.
  Assign,                                  // =
  PlusAssign, MinusAssign, StarAssign,     // += -= *=
  SlashAssign, PercentAssign,              // /= %=
  ShlAssign, ShrAssign,                    // <<= >>=
  AndAssign, OrAssign, XorAssign,          // &= |= ^=
  PlusPlus, MinusMinus,                    // ++ --
  Plus, Minus, Star, Slash, Percent,       // + - * / %
  Shl, Shr,                                // << >>
  Amp, Pipe, Caret, Tilde,                 // & | ^ ~
  AmpAmp, PipePipe, Bang,                  // && || !
  Eq, Ne, Lt, Le, Gt, Ge,                  // == != < <= > >=
};

[[nodiscard]] std::string_view to_string(Tok kind);

struct Token {
  Tok kind = Tok::End;
  std::string text;       ///< Identifier spelling (identifiers only).
  std::int64_t int_val = 0;
  double float_val = 0.0;
  SourceLoc loc;
};

}  // namespace asipfb::fe
