#include "frontend/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <map>

namespace asipfb::fe {

namespace {

const std::map<std::string_view, Tok>& keywords() {
  static const std::map<std::string_view, Tok> table = {
      {"int", Tok::KwInt},       {"float", Tok::KwFloat},
      {"void", Tok::KwVoid},     {"if", Tok::KwIf},
      {"else", Tok::KwElse},     {"while", Tok::KwWhile},
      {"for", Tok::KwFor},       {"return", Tok::KwReturn},
      {"break", Tok::KwBreak},   {"continue", Tok::KwContinue},
  };
  return table;
}

class Lexer {
public:
  Lexer(std::string_view source, DiagnosticEngine& diags)
      : src_(source), diags_(diags) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    for (;;) {
      skip_whitespace_and_comments();
      Token tok = next_token();
      const bool end = tok.kind == Tok::End;
      out.push_back(std::move(tok));
      if (end) break;
    }
    return out;
  }

private:
  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  [[nodiscard]] SourceLoc loc() const { return {line_, column_}; }

  void skip_whitespace_and_comments() {
    for (;;) {
      while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) {
        advance();
      }
      if (peek() == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') advance();
        continue;
      }
      if (peek() == '/' && peek(1) == '*') {
        const SourceLoc start = loc();
        advance();
        advance();
        while (!at_end() && !(peek() == '*' && peek(1) == '/')) advance();
        if (at_end()) {
          diags_.error(start, "unterminated block comment");
        } else {
          advance();
          advance();
        }
        continue;
      }
      return;
    }
  }

  Token next_token() {
    Token tok;
    tok.loc = loc();
    if (at_end()) {
      tok.kind = Tok::End;
      return tok;
    }
    const char c = peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return identifier();
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      return number();
    }
    return punctuation();
  }

  Token identifier() {
    Token tok;
    tok.loc = loc();
    std::string text;
    while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')) {
      text += advance();
    }
    const auto it = keywords().find(text);
    if (it != keywords().end()) {
      tok.kind = it->second;
    } else {
      tok.kind = Tok::Ident;
      tok.text = std::move(text);
    }
    return tok;
  }

  Token number() {
    Token tok;
    tok.loc = loc();
    std::string text;
    bool is_float = false;
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
    if (peek() == '.') {
      is_float = true;
      text += advance();
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      is_float = true;
      text += advance();
      if (peek() == '+' || peek() == '-') text += advance();
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) text += advance();
    }
    if (peek() == 'f' || peek() == 'F') {
      is_float = true;
      advance();  // Suffix is not part of the value.
    }
    if (is_float) {
      tok.kind = Tok::FloatLit;
      tok.float_val = std::strtod(text.c_str(), nullptr);
    } else {
      tok.kind = Tok::IntLit;
      tok.int_val = std::strtoll(text.c_str(), nullptr, 10);
    }
    return tok;
  }

  Token punctuation() {
    Token tok;
    tok.loc = loc();
    const char c = advance();
    auto two = [&](char second, Tok with, Tok without) {
      if (peek() == second) {
        advance();
        tok.kind = with;
      } else {
        tok.kind = without;
      }
    };
    switch (c) {
      case '(': tok.kind = Tok::LParen; break;
      case ')': tok.kind = Tok::RParen; break;
      case '{': tok.kind = Tok::LBrace; break;
      case '}': tok.kind = Tok::RBrace; break;
      case '[': tok.kind = Tok::LBracket; break;
      case ']': tok.kind = Tok::RBracket; break;
      case ',': tok.kind = Tok::Comma; break;
      case ';': tok.kind = Tok::Semicolon; break;
      case '~': tok.kind = Tok::Tilde; break;
      case '+':
        if (peek() == '+') { advance(); tok.kind = Tok::PlusPlus; }
        else two('=', Tok::PlusAssign, Tok::Plus);
        break;
      case '-':
        if (peek() == '-') { advance(); tok.kind = Tok::MinusMinus; }
        else two('=', Tok::MinusAssign, Tok::Minus);
        break;
      case '*': two('=', Tok::StarAssign, Tok::Star); break;
      case '/': two('=', Tok::SlashAssign, Tok::Slash); break;
      case '%': two('=', Tok::PercentAssign, Tok::Percent); break;
      case '^': two('=', Tok::XorAssign, Tok::Caret); break;
      case '=': two('=', Tok::Eq, Tok::Assign); break;
      case '!': two('=', Tok::Ne, Tok::Bang); break;
      case '&':
        if (peek() == '&') { advance(); tok.kind = Tok::AmpAmp; }
        else two('=', Tok::AndAssign, Tok::Amp);
        break;
      case '|':
        if (peek() == '|') { advance(); tok.kind = Tok::PipePipe; }
        else two('=', Tok::OrAssign, Tok::Pipe);
        break;
      case '<':
        if (peek() == '<') {
          advance();
          two('=', Tok::ShlAssign, Tok::Shl);
        } else {
          two('=', Tok::Le, Tok::Lt);
        }
        break;
      case '>':
        if (peek() == '>') {
          advance();
          two('=', Tok::ShrAssign, Tok::Shr);
        } else {
          two('=', Tok::Ge, Tok::Gt);
        }
        break;
      default:
        diags_.error(tok.loc, std::string("unexpected character '") + c + "'");
        tok.kind = Tok::End;
        break;
    }
    return tok;
  }

  std::string_view src_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source, DiagnosticEngine& diags) {
  return Lexer(source, diags).run();
}

std::string_view to_string(Tok kind) {
  switch (kind) {
    case Tok::End: return "<end>";
    case Tok::IntLit: return "integer literal";
    case Tok::FloatLit: return "float literal";
    case Tok::Ident: return "identifier";
    case Tok::KwInt: return "'int'";
    case Tok::KwFloat: return "'float'";
    case Tok::KwVoid: return "'void'";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwFor: return "'for'";
    case Tok::KwReturn: return "'return'";
    case Tok::KwBreak: return "'break'";
    case Tok::KwContinue: return "'continue'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Comma: return "','";
    case Tok::Semicolon: return "';'";
    case Tok::Assign: return "'='";
    case Tok::PlusAssign: return "'+='";
    case Tok::MinusAssign: return "'-='";
    case Tok::StarAssign: return "'*='";
    case Tok::SlashAssign: return "'/='";
    case Tok::PercentAssign: return "'%='";
    case Tok::ShlAssign: return "'<<='";
    case Tok::ShrAssign: return "'>>='";
    case Tok::AndAssign: return "'&='";
    case Tok::OrAssign: return "'|='";
    case Tok::XorAssign: return "'^='";
    case Tok::PlusPlus: return "'++'";
    case Tok::MinusMinus: return "'--'";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Shl: return "'<<'";
    case Tok::Shr: return "'>>'";
    case Tok::Amp: return "'&'";
    case Tok::Pipe: return "'|'";
    case Tok::Caret: return "'^'";
    case Tok::Tilde: return "'~'";
    case Tok::AmpAmp: return "'&&'";
    case Tok::PipePipe: return "'||'";
    case Tok::Bang: return "'!'";
    case Tok::Eq: return "'=='";
    case Tok::Ne: return "'!='";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
  }
  return "<?>";
}

}  // namespace asipfb::fe
