// Semantic analysis for BenchC: name resolution, type checking, implicit
// conversion insertion, builtin binding, and constant evaluation of global
// initializers.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "frontend/ast.hpp"
#include "ir/opcode.hpp"

namespace asipfb::fe {

/// Signature of a user function, collected before bodies are checked so
/// forward calls resolve.
struct FunctionSig {
  std::string name;
  ir::Type return_type = ir::Type::Void;
  std::vector<ir::Type> param_types;
};

/// Result of semantic analysis, consumed by the lowering phase.
struct SemaResult {
  std::vector<FunctionSig> functions;  ///< Parallel to TranslationUnit::functions.
};

/// Checks the unit in place (annotating Expr::type, Expr::sym, call targets,
/// inserting Cast nodes).  Reports problems to `diags`.
SemaResult analyze(TranslationUnit& unit, DiagnosticEngine& diags);

/// Constant value produced by const_eval.
struct ConstValue {
  ir::Type type = ir::Type::I32;
  double value = 0.0;  ///< Holds both int and float payloads exactly enough.

  [[nodiscard]] std::int32_t as_i32() const { return static_cast<std::int32_t>(value); }
  [[nodiscard]] float as_f32() const { return static_cast<float>(value); }
};

/// Evaluates a constant expression (literals, unary +/-, binary arithmetic
/// of constants, casts).  Returns nullopt when not constant.
[[nodiscard]] std::optional<ConstValue> const_eval(const Expr& expr);

/// Maps a BenchC builtin call name to an intrinsic, or None.
[[nodiscard]] ir::IntrinsicKind builtin_intrinsic(const std::string& name);

}  // namespace asipfb::fe
