// Hand-written lexer for BenchC.
#pragma once

#include <string_view>
#include <vector>

#include "frontend/token.hpp"
#include "support/diagnostics.hpp"

namespace asipfb::fe {

/// Tokenizes the whole buffer (appending an End token).  Lexical errors are
/// reported to `diags`; the caller decides whether to continue.
[[nodiscard]] std::vector<Token> lex(std::string_view source, DiagnosticEngine& diags);

}  // namespace asipfb::fe
