// One-call BenchC -> IR compilation (parse + sema + lowering + verify).
#pragma once

#include <string>
#include <string_view>

#include "ir/function.hpp"

namespace asipfb::fe {

/// Compiles BenchC source into a verified IR module.
/// Throws CompileError on source problems and std::logic_error if the
/// produced IR fails verification (a compiler bug, not a user error).
[[nodiscard]] ir::Module compile_benchc(std::string_view source,
                                        std::string module_name);

}  // namespace asipfb::fe
