// Recursive-descent parser for BenchC.
#pragma once

#include <string_view>

#include "frontend/ast.hpp"

namespace asipfb::fe {

/// Parses a full translation unit.  Errors are reported to `diags`; the
/// returned tree is usable only when `diags` has no errors.
[[nodiscard]] TranslationUnit parse(std::string_view source, DiagnosticEngine& diags);

}  // namespace asipfb::fe
