// Abstract syntax tree for BenchC.
//
// Nodes are tagged structs (one Expr type, one Stmt type) rather than a class
// hierarchy: the language is small and a closed tag set keeps sema and
// lowering as exhaustive switches the compiler can check.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "frontend/token.hpp"
#include "ir/type.hpp"
#include "support/diagnostics.hpp"

namespace asipfb::fe {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

/// Storage classes a variable can have.
enum class Storage : std::uint8_t { Global, Local, Param };

/// A resolved variable; owned by the sema symbol tables, referenced by AST
/// nodes after resolution.
struct VarSym {
  std::string name;
  ir::Type type = ir::Type::I32;  ///< Element type for arrays.
  bool is_array = false;
  std::int32_t array_size = 0;    ///< Elements, when is_array.
  Storage storage = Storage::Local;

  // Assigned during lowering:
  std::int32_t global_index = -1;   ///< Globals: index into Module::globals.
  std::int32_t frame_offset = -1;   ///< Local arrays: word offset in frame.
  std::uint32_t reg_id = 0;         ///< Scalars: backing virtual register.
  bool reg_assigned = false;
};

enum class ExprKind : std::uint8_t {
  IntLit,     ///< int_val
  FloatLit,   ///< float_val
  Var,        ///< name (resolved to sym)
  Index,      ///< children[0] = index; name/sym = array
  Call,       ///< name = callee; children = arguments
  Unary,      ///< op in {Minus, Bang, Tilde}; children[0]
  Binary,     ///< op; children[0], children[1]
  Assign,     ///< op in {Assign or compound}; children[0] = lvalue, [1] = rhs
  IncDec,     ///< op in {PlusPlus, MinusMinus}; is_prefix; children[0] = lvalue
  Cast,       ///< cast_type; children[0]
};

struct Expr {
  ExprKind kind = ExprKind::IntLit;
  SourceLoc loc;

  std::int64_t int_val = 0;
  double float_val = 0.0;
  std::string name;
  Tok op = Tok::End;
  bool is_prefix = false;
  ir::Type cast_type = ir::Type::I32;
  std::vector<ExprPtr> children;

  // Sema results:
  ir::Type type = ir::Type::I32;  ///< Value type of the expression.
  VarSym* sym = nullptr;          ///< For Var / Index.
  std::int32_t callee_index = -1; ///< For Call: function table index; -1 = builtin.
  std::int32_t builtin = -1;      ///< For Call: IntrinsicKind as int when builtin.
};

enum class StmtKind : std::uint8_t {
  Block,     ///< body
  Decl,      ///< sym (owned by sema), init = children[0] (optional)
  ExprStmt,  ///< expr
  If,        ///< expr = cond; body[0] = then; body[1] = else (optional)
  While,     ///< expr = cond; body[0]
  For,       ///< init_stmt; expr = cond (optional); step = expr2; body[0]
  Return,    ///< expr (optional)
  Break,
  Continue,
};

struct Stmt {
  StmtKind kind = StmtKind::Block;
  SourceLoc loc;

  ExprPtr expr;               ///< Condition / expression / return value.
  ExprPtr expr2;              ///< For: step expression.
  StmtPtr init_stmt;          ///< For: init (Decl or ExprStmt).
  std::vector<StmtPtr> body;  ///< Block statements or then/else/loop bodies.

  // Decl payload:
  VarSym* sym = nullptr;          ///< Resolved symbol (sema-owned).
  std::string decl_name;
  ir::Type decl_type = ir::Type::I32;
  bool decl_is_array = false;
  std::int32_t decl_array_size = 0;
  ExprPtr decl_init;
};

/// Top-level function definition.
struct FunctionDecl {
  std::string name;
  SourceLoc loc;
  ir::Type return_type = ir::Type::Void;
  std::vector<std::pair<std::string, ir::Type>> params;
  StmtPtr body;  ///< Block.

  std::vector<VarSym*> param_syms;  ///< Filled by sema.
};

/// Top-level global variable definition.
struct GlobalDecl {
  std::string name;
  SourceLoc loc;
  ir::Type type = ir::Type::I32;
  bool is_array = false;
  std::int32_t array_size = 0;
  std::vector<ExprPtr> init;  ///< Scalar: one element; array: initializer list.

  VarSym* sym = nullptr;  ///< Filled by sema.
};

/// A parsed translation unit.
struct TranslationUnit {
  std::vector<GlobalDecl> globals;
  std::vector<FunctionDecl> functions;

  /// Symbol storage (stable addresses for VarSym* references).
  std::vector<std::unique_ptr<VarSym>> symbols;

  VarSym* make_symbol() {
    symbols.push_back(std::make_unique<VarSym>());
    return symbols.back().get();
  }
};

}  // namespace asipfb::fe
