#include "frontend/parser.hpp"

#include <utility>

#include "frontend/lexer.hpp"

namespace asipfb::fe {

namespace {

class Parser {
public:
  Parser(std::vector<Token> tokens, DiagnosticEngine& diags)
      : tokens_(std::move(tokens)), diags_(diags) {}

  TranslationUnit run() {
    TranslationUnit unit;
    while (!at(Tok::End) && !fatal_) {
      parse_top_level(unit);
    }
    return unit;
  }

private:
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  [[nodiscard]] bool at(Tok kind) const { return peek().kind == kind; }

  Token advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool accept(Tok kind) {
    if (!at(kind)) return false;
    advance();
    return true;
  }

  Token expect(Tok kind, const char* context) {
    if (at(kind)) return advance();
    diags_.error(peek().loc, std::string("expected ") + std::string(to_string(kind)) +
                                 " " + context + ", got " +
                                 std::string(to_string(peek().kind)));
    fatal_ = true;
    return peek();
  }

  [[nodiscard]] bool at_type() const {
    return at(Tok::KwInt) || at(Tok::KwFloat);
  }

  ir::Type parse_type() {
    if (accept(Tok::KwInt)) return ir::Type::I32;
    if (accept(Tok::KwFloat)) return ir::Type::F32;
    expect(Tok::KwInt, "in type");
    return ir::Type::I32;
  }

  void parse_top_level(TranslationUnit& unit) {
    const SourceLoc loc = peek().loc;
    ir::Type type = ir::Type::Void;
    if (accept(Tok::KwVoid)) {
      type = ir::Type::Void;
    } else if (at_type()) {
      type = parse_type();
    } else {
      diags_.error(loc, "expected declaration");
      fatal_ = true;
      return;
    }
    Token name = expect(Tok::Ident, "in top-level declaration");
    if (at(Tok::LParen)) {
      unit.functions.push_back(parse_function(type, std::move(name), loc));
    } else {
      if (type == ir::Type::Void) {
        diags_.error(loc, "variables cannot have void type");
        fatal_ = true;
        return;
      }
      unit.globals.push_back(parse_global(type, std::move(name), loc));
    }
  }

  GlobalDecl parse_global(ir::Type type, Token name, SourceLoc loc) {
    GlobalDecl g;
    g.loc = loc;
    g.type = type;
    g.name = name.text;
    if (accept(Tok::LBracket)) {
      g.is_array = true;
      Token size = expect(Tok::IntLit, "as array size");
      g.array_size = static_cast<std::int32_t>(size.int_val);
      expect(Tok::RBracket, "after array size");
    }
    if (accept(Tok::Assign)) {
      if (accept(Tok::LBrace)) {
        do {
          g.init.push_back(parse_expr());
        } while (accept(Tok::Comma) && !at(Tok::RBrace));
        expect(Tok::RBrace, "after initializer list");
      } else {
        g.init.push_back(parse_expr());
      }
    }
    expect(Tok::Semicolon, "after global declaration");
    return g;
  }

  FunctionDecl parse_function(ir::Type return_type, Token name, SourceLoc loc) {
    FunctionDecl fn;
    fn.loc = loc;
    fn.return_type = return_type;
    fn.name = name.text;
    expect(Tok::LParen, "after function name");
    if (!at(Tok::RParen)) {
      if (accept(Tok::KwVoid)) {
        // `f(void)` — empty parameter list.
      } else {
        do {
          ir::Type pt = parse_type();
          Token pn = expect(Tok::Ident, "as parameter name");
          fn.params.emplace_back(pn.text, pt);
        } while (accept(Tok::Comma));
      }
    }
    expect(Tok::RParen, "after parameters");
    fn.body = parse_block();
    return fn;
  }

  StmtPtr parse_block() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::Block;
    stmt->loc = peek().loc;
    expect(Tok::LBrace, "to open block");
    while (!at(Tok::RBrace) && !at(Tok::End) && !fatal_) {
      stmt->body.push_back(parse_stmt());
    }
    expect(Tok::RBrace, "to close block");
    return stmt;
  }

  StmtPtr parse_stmt() {
    const SourceLoc loc = peek().loc;
    if (at(Tok::LBrace)) return parse_block();
    if (at_type()) return parse_decl();
    if (accept(Tok::KwIf)) return parse_if(loc);
    if (accept(Tok::KwWhile)) return parse_while(loc);
    if (accept(Tok::KwFor)) return parse_for(loc);
    if (accept(Tok::KwReturn)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::Return;
      stmt->loc = loc;
      if (!at(Tok::Semicolon)) stmt->expr = parse_expr();
      expect(Tok::Semicolon, "after return");
      return stmt;
    }
    if (accept(Tok::KwBreak)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::Break;
      stmt->loc = loc;
      expect(Tok::Semicolon, "after break");
      return stmt;
    }
    if (accept(Tok::KwContinue)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::Continue;
      stmt->loc = loc;
      expect(Tok::Semicolon, "after continue");
      return stmt;
    }
    if (accept(Tok::Semicolon)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::Block;  // Empty statement = empty block.
      stmt->loc = loc;
      return stmt;
    }
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::ExprStmt;
    stmt->loc = loc;
    stmt->expr = parse_expr();
    expect(Tok::Semicolon, "after expression");
    return stmt;
  }

  StmtPtr parse_decl() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::Decl;
    stmt->loc = peek().loc;
    stmt->decl_type = parse_type();
    Token name = expect(Tok::Ident, "in declaration");
    stmt->decl_name = name.text;
    if (accept(Tok::LBracket)) {
      stmt->decl_is_array = true;
      Token size = expect(Tok::IntLit, "as array size");
      stmt->decl_array_size = static_cast<std::int32_t>(size.int_val);
      expect(Tok::RBracket, "after array size");
    }
    if (accept(Tok::Assign)) {
      stmt->decl_init = parse_expr();
    }
    expect(Tok::Semicolon, "after declaration");
    return stmt;
  }

  StmtPtr parse_if(SourceLoc loc) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::If;
    stmt->loc = loc;
    expect(Tok::LParen, "after 'if'");
    stmt->expr = parse_expr();
    expect(Tok::RParen, "after condition");
    stmt->body.push_back(parse_stmt());
    if (accept(Tok::KwElse)) {
      stmt->body.push_back(parse_stmt());
    }
    return stmt;
  }

  StmtPtr parse_while(SourceLoc loc) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::While;
    stmt->loc = loc;
    expect(Tok::LParen, "after 'while'");
    stmt->expr = parse_expr();
    expect(Tok::RParen, "after condition");
    stmt->body.push_back(parse_stmt());
    return stmt;
  }

  StmtPtr parse_for(SourceLoc loc) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::For;
    stmt->loc = loc;
    expect(Tok::LParen, "after 'for'");
    if (at(Tok::Semicolon)) {
      advance();
    } else if (at_type()) {
      stmt->init_stmt = parse_decl();
    } else {
      auto init = std::make_unique<Stmt>();
      init->kind = StmtKind::ExprStmt;
      init->loc = peek().loc;
      init->expr = parse_expr();
      expect(Tok::Semicolon, "after for-init");
      stmt->init_stmt = std::move(init);
    }
    if (!at(Tok::Semicolon)) stmt->expr = parse_expr();
    expect(Tok::Semicolon, "after for-condition");
    if (!at(Tok::RParen)) stmt->expr2 = parse_expr();
    expect(Tok::RParen, "after for-step");
    stmt->body.push_back(parse_stmt());
    return stmt;
  }

  // --- Expressions ---------------------------------------------------------

  ExprPtr parse_expr() { return parse_assignment(); }

  [[nodiscard]] static bool is_assign_op(Tok kind) {
    switch (kind) {
      case Tok::Assign: case Tok::PlusAssign: case Tok::MinusAssign:
      case Tok::StarAssign: case Tok::SlashAssign: case Tok::PercentAssign:
      case Tok::ShlAssign: case Tok::ShrAssign: case Tok::AndAssign:
      case Tok::OrAssign: case Tok::XorAssign:
        return true;
      default:
        return false;
    }
  }

  ExprPtr parse_assignment() {
    ExprPtr lhs = parse_binary(0);
    if (is_assign_op(peek().kind)) {
      Token op = advance();
      if (lhs->kind != ExprKind::Var && lhs->kind != ExprKind::Index) {
        diags_.error(op.loc, "left side of assignment is not assignable");
        fatal_ = true;
      }
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::Assign;
      node->loc = op.loc;
      node->op = op.kind;
      node->children.push_back(std::move(lhs));
      node->children.push_back(parse_assignment());
      return node;
    }
    return lhs;
  }

  /// Binary-operator precedence; higher binds tighter. Returns -1 for
  /// non-binary tokens.
  [[nodiscard]] static int precedence(Tok kind) {
    switch (kind) {
      case Tok::PipePipe: return 1;
      case Tok::AmpAmp: return 2;
      case Tok::Pipe: return 3;
      case Tok::Caret: return 4;
      case Tok::Amp: return 5;
      case Tok::Eq: case Tok::Ne: return 6;
      case Tok::Lt: case Tok::Le: case Tok::Gt: case Tok::Ge: return 7;
      case Tok::Shl: case Tok::Shr: return 8;
      case Tok::Plus: case Tok::Minus: return 9;
      case Tok::Star: case Tok::Slash: case Tok::Percent: return 10;
      default: return -1;
    }
  }

  ExprPtr parse_binary(int min_prec) {
    ExprPtr lhs = parse_unary();
    for (;;) {
      const int prec = precedence(peek().kind);
      if (prec < 0 || prec < min_prec) return lhs;
      Token op = advance();
      ExprPtr rhs = parse_binary(prec + 1);
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::Binary;
      node->loc = op.loc;
      node->op = op.kind;
      node->children.push_back(std::move(lhs));
      node->children.push_back(std::move(rhs));
      lhs = std::move(node);
    }
  }

  ExprPtr parse_unary() {
    const SourceLoc loc = peek().loc;
    if (at(Tok::Minus) || at(Tok::Bang) || at(Tok::Tilde)) {
      Token op = advance();
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::Unary;
      node->loc = loc;
      node->op = op.kind;
      node->children.push_back(parse_unary());
      return node;
    }
    if (accept(Tok::Plus)) {
      return parse_unary();  // Unary plus is a no-op.
    }
    if (at(Tok::PlusPlus) || at(Tok::MinusMinus)) {
      Token op = advance();
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::IncDec;
      node->loc = loc;
      node->op = op.kind;
      node->is_prefix = true;
      node->children.push_back(parse_unary());
      return node;
    }
    // Cast: '(' type ')' unary.
    if (at(Tok::LParen) && (peek(1).kind == Tok::KwInt || peek(1).kind == Tok::KwFloat)) {
      advance();
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::Cast;
      node->loc = loc;
      node->cast_type = parse_type();
      expect(Tok::RParen, "after cast type");
      node->children.push_back(parse_unary());
      return node;
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr expr = parse_primary();
    for (;;) {
      if (accept(Tok::LBracket)) {
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::Index;
        node->loc = expr->loc;
        node->name = expr->name;
        if (expr->kind != ExprKind::Var) {
          diags_.error(expr->loc, "only named arrays can be indexed");
          fatal_ = true;
        }
        node->children.push_back(parse_expr());
        expect(Tok::RBracket, "after index");
        expr = std::move(node);
        continue;
      }
      if (at(Tok::PlusPlus) || at(Tok::MinusMinus)) {
        Token op = advance();
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::IncDec;
        node->loc = op.loc;
        node->op = op.kind;
        node->is_prefix = false;
        node->children.push_back(std::move(expr));
        expr = std::move(node);
        continue;
      }
      return expr;
    }
  }

  ExprPtr parse_primary() {
    const SourceLoc loc = peek().loc;
    if (at(Tok::IntLit)) {
      Token tok = advance();
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::IntLit;
      node->loc = loc;
      node->int_val = tok.int_val;
      return node;
    }
    if (at(Tok::FloatLit)) {
      Token tok = advance();
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::FloatLit;
      node->loc = loc;
      node->float_val = tok.float_val;
      return node;
    }
    if (at(Tok::Ident)) {
      Token tok = advance();
      if (at(Tok::LParen)) {
        advance();
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::Call;
        node->loc = loc;
        node->name = tok.text;
        if (!at(Tok::RParen)) {
          do {
            node->children.push_back(parse_expr());
          } while (accept(Tok::Comma));
        }
        expect(Tok::RParen, "after call arguments");
        return node;
      }
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::Var;
      node->loc = loc;
      node->name = tok.text;
      return node;
    }
    if (accept(Tok::LParen)) {
      ExprPtr inner = parse_expr();
      expect(Tok::RParen, "after parenthesized expression");
      return inner;
    }
    diags_.error(loc, "expected expression, got " + std::string(to_string(peek().kind)));
    fatal_ = true;
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::IntLit;
    node->loc = loc;
    return node;
  }

  std::vector<Token> tokens_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  bool fatal_ = false;
};

}  // namespace

TranslationUnit parse(std::string_view source, DiagnosticEngine& diags) {
  auto tokens = lex(source, diags);
  if (diags.has_errors()) return {};
  return Parser(std::move(tokens), diags).run();
}

}  // namespace asipfb::fe
