// Lowering of the checked BenchC AST to 3-address IR.
#pragma once

#include "frontend/ast.hpp"
#include "frontend/sema.hpp"
#include "ir/function.hpp"

namespace asipfb::fe {

/// Lowers the unit to an IR module.  The unit must have been analyzed
/// without errors.  Like the paper's modified-gcc front end the lowering is
/// mostly literal 3-address translation; the single smart step is strength
/// reduction of constant integer multiplies (powers of two and two-bit
/// scaling constants), which is where the paper's add-shift-add address
/// chains originate.
[[nodiscard]] ir::Module lower(TranslationUnit& unit, const SemaResult& sema,
                               std::string module_name);

}  // namespace asipfb::fe
