#include "frontend/lower.hpp"

#include <bit>
#include <cassert>
#include <cstring>
#include <optional>
#include <stdexcept>

#include "ir/builder.hpp"

namespace asipfb::fe {

namespace {

using ir::BlockId;
using ir::Builder;
using ir::Opcode;
using ir::Reg;
using ir::Type;

std::uint32_t bits_of(float f) {
  std::uint32_t u = 0;
  std::memcpy(&u, &f, sizeof u);
  return u;
}

class Lowerer {
public:
  Lowerer(TranslationUnit& unit, const SemaResult& sema, std::string module_name)
      : unit_(unit), sema_(sema) {
    module_.name = std::move(module_name);
  }

  ir::Module run() {
    lower_globals();
    declare_functions();
    for (std::size_t i = 0; i < unit_.functions.size(); ++i) {
      lower_function(unit_.functions[i], module_.functions[i]);
    }
    module_.layout_globals();
    return std::move(module_);
  }

private:
  void lower_globals() {
    for (auto& g : unit_.globals) {
      ir::GlobalArray out;
      out.name = g.name;
      out.elem_type = g.type;
      out.size = static_cast<std::uint32_t>(g.is_array ? g.array_size : 1);
      for (const auto& init : g.init) {
        const auto value = const_eval(*init);
        assert(value && "sema guarantees constant initializers");
        if (g.type == Type::F32) {
          out.init.push_back(bits_of(value->as_f32()));
        } else {
          out.init.push_back(static_cast<std::uint32_t>(value->as_i32()));
        }
      }
      g.sym->global_index = static_cast<std::int32_t>(module_.globals.size());
      module_.globals.push_back(std::move(out));
    }
  }

  /// Creates all function shells first so calls can reference any function.
  void declare_functions() {
    for (const auto& sig : sema_.functions) {
      ir::Function fn;
      fn.name = sig.name;
      fn.return_type = sig.return_type;
      module_.functions.push_back(std::move(fn));
    }
  }

  void lower_function(FunctionDecl& decl, ir::Function& fn) {
    fn_ = &fn;
    Builder builder(fn);
    b_ = &builder;
    const BlockId entry = builder.create_block("entry");
    builder.set_insert_point(entry);

    for (std::size_t p = 0; p < decl.param_syms.size(); ++p) {
      VarSym* sym = decl.param_syms[p];
      const Reg reg = fn.new_reg(sym->type);
      fn.params.push_back(reg);
      sym->reg_id = reg.id;
      sym->reg_assigned = true;
    }

    lower_stmt(*decl.body);

    // Terminate every dangling block with a default return.
    for (auto& block : fn.blocks) {
      if (!block.instrs.empty() && block.instrs.back().is_terminator()) continue;
      b_->set_insert_point(static_cast<BlockId>(&block - fn.blocks.data()));
      emit_default_return();
    }
    b_ = nullptr;
    fn_ = nullptr;
  }

  void emit_default_return() {
    switch (fn_->return_type) {
      case Type::Void:
        b_->emit_ret();
        break;
      case Type::I32:
        b_->emit_ret_value(b_->emit_movi(0));
        break;
      case Type::F32:
        b_->emit_ret_value(b_->emit_movf(0.0f));
        break;
    }
  }

  // --- Statements ----------------------------------------------------------

  void lower_stmt(Stmt& stmt) {
    // Statements after a terminator (e.g. code after `return`) go into an
    // unreachable continuation block so emission stays structurally valid.
    if (b_->block_terminated()) {
      const BlockId dead = b_->create_block("dead");
      b_->set_insert_point(dead);
    }
    switch (stmt.kind) {
      case StmtKind::Block:
        for (auto& s : stmt.body) lower_stmt(*s);
        break;
      case StmtKind::Decl:
        lower_decl(stmt);
        break;
      case StmtKind::ExprStmt:
        lower_expr_stmt(*stmt.expr);
        break;
      case StmtKind::If:
        lower_if(stmt);
        break;
      case StmtKind::While:
        lower_while(stmt);
        break;
      case StmtKind::For:
        lower_for(stmt);
        break;
      case StmtKind::Return:
        if (stmt.expr) {
          b_->emit_ret_value(eval(*stmt.expr));
        } else {
          b_->emit_ret();
        }
        break;
      case StmtKind::Break:
        assert(!break_targets_.empty());
        b_->emit_br(break_targets_.back());
        break;
      case StmtKind::Continue:
        assert(!continue_targets_.empty());
        b_->emit_br(continue_targets_.back());
        break;
    }
  }

  void lower_decl(Stmt& stmt) {
    VarSym* sym = stmt.sym;
    if (sym->is_array) {
      sym->frame_offset = static_cast<std::int32_t>(fn_->frame_words);
      fn_->frame_words += static_cast<std::uint32_t>(sym->array_size);
      return;
    }
    const Reg reg = fn_->new_reg(sym->type);
    sym->reg_id = reg.id;
    sym->reg_assigned = true;
    if (stmt.decl_init) {
      eval(*stmt.decl_init, reg);
    }
  }

  void lower_expr_stmt(Expr& expr) {
    // Void calls at statement level take the no-result form directly.
    if (expr.kind == ExprKind::Call && expr.builtin < 0 && expr.callee_index >= 0 &&
        sema_.functions[static_cast<std::size_t>(expr.callee_index)].return_type ==
            Type::Void) {
      std::vector<Reg> args;
      args.reserve(expr.children.size());
      for (auto& arg : expr.children) args.push_back(eval(*arg));
      b_->emit_call_void(static_cast<ir::FuncId>(expr.callee_index), std::move(args));
      return;
    }
    (void)eval(expr);
  }

  void lower_if(Stmt& stmt) {
    const Reg cond = eval_condition(*stmt.expr);
    const BlockId then_block = b_->create_block("if.then");
    const bool has_else = stmt.body.size() > 1;
    const BlockId else_block = has_else ? b_->create_block("if.else") : ir::kNoBlock;
    const BlockId merge = b_->create_block("if.end");
    b_->emit_cond_br(cond, then_block, has_else ? else_block : merge);

    b_->set_insert_point(then_block);
    lower_stmt(*stmt.body[0]);
    if (!b_->block_terminated()) b_->emit_br(merge);

    if (has_else) {
      b_->set_insert_point(else_block);
      lower_stmt(*stmt.body[1]);
      if (!b_->block_terminated()) b_->emit_br(merge);
    }
    b_->set_insert_point(merge);
  }

  void lower_while(Stmt& stmt) {
    const BlockId header = b_->create_block("while.cond");
    const BlockId body = b_->create_block("while.body");
    const BlockId exit = b_->create_block("while.end");
    b_->emit_br(header);

    b_->set_insert_point(header);
    const Reg cond = eval_condition(*stmt.expr);
    b_->emit_cond_br(cond, body, exit);

    break_targets_.push_back(exit);
    continue_targets_.push_back(header);
    b_->set_insert_point(body);
    lower_stmt(*stmt.body[0]);
    if (!b_->block_terminated()) b_->emit_br(header);
    break_targets_.pop_back();
    continue_targets_.pop_back();

    b_->set_insert_point(exit);
  }

  void lower_for(Stmt& stmt) {
    if (stmt.init_stmt) lower_stmt(*stmt.init_stmt);
    const BlockId header = b_->create_block("for.cond");
    const BlockId body = b_->create_block("for.body");
    const BlockId latch = b_->create_block("for.step");
    const BlockId exit = b_->create_block("for.end");
    b_->emit_br(header);

    b_->set_insert_point(header);
    if (stmt.expr) {
      const Reg cond = eval_condition(*stmt.expr);
      b_->emit_cond_br(cond, body, exit);
    } else {
      b_->emit_br(body);
    }

    break_targets_.push_back(exit);
    continue_targets_.push_back(latch);
    b_->set_insert_point(body);
    lower_stmt(*stmt.body[0]);
    if (!b_->block_terminated()) b_->emit_br(latch);
    break_targets_.pop_back();
    continue_targets_.pop_back();

    b_->set_insert_point(latch);
    if (stmt.expr2) (void)eval(*stmt.expr2);
    b_->emit_br(header);

    b_->set_insert_point(exit);
  }

  // --- Expressions ---------------------------------------------------------

  /// Evaluates a branch condition to an i32 register (non-zero = taken).
  Reg eval_condition(Expr& expr) {
    const Reg value = eval(expr);
    if (fn_->type_of(value) == Type::F32) {
      const Reg zero = b_->emit_movf(0.0f);
      return b_->emit_binary(Opcode::FCmpNe, Type::I32, value, zero);
    }
    return value;
  }

  /// Evaluates `expr`; when `dst` is given the result is produced in `dst`
  /// (so scalar assignments avoid copy instructions, like gcc's 3AC).
  Reg eval(Expr& expr, std::optional<Reg> dst = std::nullopt) {
    switch (expr.kind) {
      case ExprKind::IntLit: {
        const auto value = static_cast<std::int32_t>(expr.int_val);
        if (dst) {
          b_->emit(ir::make::movi(*dst, value));
          return *dst;
        }
        return b_->emit_movi(value);
      }
      case ExprKind::FloatLit: {
        const auto value = static_cast<float>(expr.float_val);
        if (dst) {
          b_->emit(ir::make::movf(*dst, value));
          return *dst;
        }
        return b_->emit_movf(value);
      }
      case ExprKind::Var:
        return eval_var(expr, dst);
      case ExprKind::Index: {
        const Reg addr = element_address(expr);
        return emit_load(expr.sym->type, addr, dst);
      }
      case ExprKind::Call:
        return eval_call(expr, dst);
      case ExprKind::Unary:
        return eval_unary(expr, dst);
      case ExprKind::Binary:
        return eval_binary(expr, dst);
      case ExprKind::Assign:
        return eval_assign(expr, dst);
      case ExprKind::IncDec:
        return eval_incdec(expr, dst);
      case ExprKind::Cast: {
        Expr& inner = *expr.children[0];
        const Reg src = eval(inner);
        if (inner.type == expr.cast_type) {
          return into_dst(src, dst);
        }
        const Opcode op =
            expr.cast_type == Type::F32 ? Opcode::IntToFp : Opcode::FpToInt;
        if (dst) {
          b_->emit(ir::make::unary(op, *dst, src));
          return *dst;
        }
        return b_->emit_unary(op, expr.cast_type, src);
      }
    }
    throw std::logic_error("unhandled expression kind");
  }

  /// Moves `value` into `dst` when a destination was requested.
  Reg into_dst(Reg value, std::optional<Reg> dst) {
    if (!dst || dst->id == value.id) return value;
    b_->emit(ir::make::copy(*dst, value));
    return *dst;
  }

  Reg eval_var(Expr& expr, std::optional<Reg> dst) {
    VarSym* sym = expr.sym;
    if (sym->storage == Storage::Global) {
      const Reg addr = b_->emit_addr_global(sym->global_index);
      return emit_load(sym->type, addr, dst);
    }
    assert(sym->reg_assigned && "scalar local lowered before use");
    return into_dst(Reg{sym->reg_id}, dst);
  }

  Reg emit_load(Type elem, Reg addr, std::optional<Reg> dst) {
    const Opcode op = elem == Type::F32 ? Opcode::FLoad : Opcode::Load;
    if (dst) {
      b_->emit(ir::make::load(op, *dst, addr));
      return *dst;
    }
    return b_->emit_load(elem, addr);
  }

  /// Address of `name[index]` (or of a scalar global when expr is Var).
  Reg element_address(Expr& expr) {
    VarSym* sym = expr.sym;
    Reg base;
    if (sym->storage == Storage::Global) {
      base = b_->emit_addr_global(sym->global_index);
    } else {
      base = b_->emit_addr_local(sym->frame_offset);
    }
    if (expr.kind == ExprKind::Var) return base;
    const Reg index = eval(*expr.children[0]);
    return b_->emit_binary(Opcode::Add, Type::I32, base, index);
  }

  Reg eval_call(Expr& expr, std::optional<Reg> dst) {
    if (expr.builtin >= 0) {
      const auto kind = static_cast<ir::IntrinsicKind>(expr.builtin);
      const Reg arg = eval(*expr.children[0]);
      const Type result = kind == ir::IntrinsicKind::IAbs ? Type::I32 : Type::F32;
      if (dst) {
        b_->emit(ir::make::intrin(kind, *dst, {arg}));
        return *dst;
      }
      return b_->emit_intrin(kind, result, {arg});
    }
    const auto callee = static_cast<ir::FuncId>(expr.callee_index);
    const auto& sig = sema_.functions[static_cast<std::size_t>(expr.callee_index)];
    std::vector<Reg> args;
    args.reserve(expr.children.size());
    for (auto& arg : expr.children) args.push_back(eval(*arg));
    if (sig.return_type == Type::Void) {
      // Void call in a value position: emit the call, yield a dummy zero.
      b_->emit_call_void(callee, std::move(args));
      return dst ? eval_zero(Type::I32, dst) : b_->emit_movi(0);
    }
    if (dst) {
      b_->emit(ir::make::call(*dst, callee, std::move(args)));
      return *dst;
    }
    return b_->emit_call(callee, sig.return_type, std::move(args));
  }

  Reg eval_zero(Type type, std::optional<Reg> dst) {
    if (type == Type::F32) {
      if (dst) {
        b_->emit(ir::make::movf(*dst, 0.0f));
        return *dst;
      }
      return b_->emit_movf(0.0f);
    }
    if (dst) {
      b_->emit(ir::make::movi(*dst, 0));
      return *dst;
    }
    return b_->emit_movi(0);
  }

  Reg eval_unary(Expr& expr, std::optional<Reg> dst) {
    const Reg src = eval(*expr.children[0]);
    Opcode op = Opcode::Neg;
    Type result = expr.type;
    switch (expr.op) {
      case Tok::Minus:
        op = expr.type == Type::F32 ? Opcode::FNeg : Opcode::Neg;
        break;
      case Tok::Tilde:
        op = Opcode::Not;
        break;
      case Tok::Bang: {
        const Reg zero = b_->emit_movi(0);
        if (dst) {
          b_->emit(ir::make::binary(Opcode::CmpEq, *dst, src, zero));
          return *dst;
        }
        return b_->emit_binary(Opcode::CmpEq, Type::I32, src, zero);
      }
      default:
        throw std::logic_error("unhandled unary operator");
    }
    if (dst) {
      b_->emit(ir::make::unary(op, *dst, src));
      return *dst;
    }
    return b_->emit_unary(op, result, src);
  }

  [[nodiscard]] static Opcode binary_opcode(Tok op, Type operand_type) {
    const bool fp = operand_type == Type::F32;
    switch (op) {
      case Tok::Plus: return fp ? Opcode::FAdd : Opcode::Add;
      case Tok::Minus: return fp ? Opcode::FSub : Opcode::Sub;
      case Tok::Star: return fp ? Opcode::FMul : Opcode::Mul;
      case Tok::Slash: return fp ? Opcode::FDiv : Opcode::Div;
      case Tok::Percent: return Opcode::Rem;
      case Tok::Shl: return Opcode::Shl;
      case Tok::Shr: return Opcode::Shr;
      case Tok::Amp: return Opcode::And;
      case Tok::Pipe: return Opcode::Or;
      case Tok::Caret: return Opcode::Xor;
      case Tok::Eq: return fp ? Opcode::FCmpEq : Opcode::CmpEq;
      case Tok::Ne: return fp ? Opcode::FCmpNe : Opcode::CmpNe;
      case Tok::Lt: return fp ? Opcode::FCmpLt : Opcode::CmpLt;
      case Tok::Le: return fp ? Opcode::FCmpLe : Opcode::CmpLe;
      case Tok::Gt: return fp ? Opcode::FCmpGt : Opcode::CmpGt;
      case Tok::Ge: return fp ? Opcode::FCmpGe : Opcode::CmpGe;
      default: throw std::logic_error("unhandled binary operator");
    }
  }

  Reg eval_binary(Expr& expr, std::optional<Reg> dst) {
    if (expr.op == Tok::AmpAmp || expr.op == Tok::PipePipe) {
      return eval_short_circuit(expr, dst);
    }
    // Strength-reduce constant integer multiplies (see header comment).
    if (expr.op == Tok::Star && expr.type == Type::I32) {
      if (Reg out; strength_reduce_mul(expr, dst, out)) return out;
    }
    Expr& lhs_expr = *expr.children[0];
    Expr& rhs_expr = *expr.children[1];
    const Reg lhs = eval(lhs_expr);
    const Reg rhs = eval(rhs_expr);
    const Type operand_type = lhs_expr.type;
    const Opcode op = binary_opcode(expr.op, operand_type);
    if (dst) {
      b_->emit(ir::make::binary(op, *dst, lhs, rhs));
      return *dst;
    }
    return b_->emit_binary(op, expr.type, lhs, rhs);
  }

  /// x * c for power-of-two (one shift) or two-bit constants >= 6
  /// (shift+shift+add — the classic gcc scaling pattern that yields the
  /// paper's add-shift-add address chains).  Returns false when not applied.
  bool strength_reduce_mul(Expr& expr, std::optional<Reg> dst, Reg& out) {
    Expr* const_side = nullptr;
    Expr* value_side = nullptr;
    std::int32_t c = 0;
    for (int side = 0; side < 2; ++side) {
      const auto value = const_eval(*expr.children[side]);
      if (value && value->type == Type::I32) {
        const_side = expr.children[side].get();
        value_side = expr.children[1 - side].get();
        c = value->as_i32();
        break;
      }
    }
    if (const_side == nullptr || c < 0) return false;
    if (c == 0) {
      out = eval_zero(Type::I32, dst);
      return true;
    }
    if (c == 1) {
      out = eval(*value_side, dst);
      return true;
    }
    const auto uc = static_cast<std::uint32_t>(c);
    if (std::has_single_bit(uc)) {
      const Reg x = eval(*value_side);
      const Reg amount = b_->emit_movi(std::countr_zero(uc));
      if (dst) {
        b_->emit(ir::make::binary(Opcode::Shl, *dst, x, amount));
        out = *dst;
      } else {
        out = b_->emit_binary(Opcode::Shl, Type::I32, x, amount);
      }
      return true;
    }
    if (std::popcount(uc) == 2 && c >= 6) {
      const int high = 31 - std::countl_zero(uc);
      const int low = std::countr_zero(uc);
      const Reg x = eval(*value_side);
      const Reg amount_high = b_->emit_movi(high);
      const Reg part_high = b_->emit_binary(Opcode::Shl, Type::I32, x, amount_high);
      Reg part_low;
      if (low == 0) {
        part_low = x;
      } else {
        const Reg amount_low = b_->emit_movi(low);
        part_low = b_->emit_binary(Opcode::Shl, Type::I32, x, amount_low);
      }
      if (dst) {
        b_->emit(ir::make::binary(Opcode::Add, *dst, part_high, part_low));
        out = *dst;
      } else {
        out = b_->emit_binary(Opcode::Add, Type::I32, part_high, part_low);
      }
      return true;
    }
    return false;
  }

  /// Short-circuit && / || via control flow, producing 0/1.
  Reg eval_short_circuit(Expr& expr, std::optional<Reg> dst) {
    const Reg result = dst ? *dst : fn_->new_reg(Type::I32);
    const bool is_and = expr.op == Tok::AmpAmp;
    const BlockId rhs_block = b_->create_block(is_and ? "and.rhs" : "or.rhs");
    const BlockId short_block = b_->create_block(is_and ? "and.false" : "or.true");
    const BlockId merge = b_->create_block(is_and ? "and.end" : "or.end");

    const Reg lhs = to_bool(eval(*expr.children[0]), expr.children[0]->type);
    if (is_and) {
      b_->emit_cond_br(lhs, rhs_block, short_block);
    } else {
      b_->emit_cond_br(lhs, short_block, rhs_block);
    }

    b_->set_insert_point(rhs_block);
    const Reg rhs = to_bool(eval(*expr.children[1]), expr.children[1]->type);
    b_->emit(ir::make::copy(result, rhs));
    b_->emit_br(merge);

    b_->set_insert_point(short_block);
    b_->emit(ir::make::movi(result, is_and ? 0 : 1));
    b_->emit_br(merge);

    b_->set_insert_point(merge);
    return result;
  }

  /// Normalizes a value to 0/1.
  Reg to_bool(Reg value, Type type) {
    if (type == Type::F32) {
      const Reg zero = b_->emit_movf(0.0f);
      return b_->emit_binary(Opcode::FCmpNe, Type::I32, value, zero);
    }
    const Reg zero = b_->emit_movi(0);
    return b_->emit_binary(Opcode::CmpNe, Type::I32, value, zero);
  }

  [[nodiscard]] static Tok compound_base_op(Tok op) {
    switch (op) {
      case Tok::PlusAssign: return Tok::Plus;
      case Tok::MinusAssign: return Tok::Minus;
      case Tok::StarAssign: return Tok::Star;
      case Tok::SlashAssign: return Tok::Slash;
      case Tok::PercentAssign: return Tok::Percent;
      case Tok::ShlAssign: return Tok::Shl;
      case Tok::ShrAssign: return Tok::Shr;
      case Tok::AndAssign: return Tok::Amp;
      case Tok::OrAssign: return Tok::Pipe;
      case Tok::XorAssign: return Tok::Caret;
      default: return Tok::End;
    }
  }

  Reg eval_assign(Expr& expr, std::optional<Reg> dst) {
    Expr& lhs = *expr.children[0];
    Expr& rhs = *expr.children[1];
    const Tok base_op = compound_base_op(expr.op);
    VarSym* sym = lhs.sym;

    // Scalar register variable.
    if (lhs.kind == ExprKind::Var && sym->storage != Storage::Global) {
      const Reg var{sym->reg_id};
      if (base_op == Tok::End) {
        eval(rhs, var);
      } else {
        const Reg rhs_val = eval(rhs);
        const Opcode op = binary_opcode(base_op, sym->type);
        b_->emit(ir::make::binary(op, var, var, rhs_val));
      }
      return into_dst(var, dst);
    }

    // Memory variable (global scalar or array element).
    const Reg addr = element_address(lhs);
    Reg value;
    if (base_op == Tok::End) {
      value = eval(rhs);
    } else {
      const Reg old = b_->emit_load(sym->type, addr);
      const Reg rhs_val = eval(rhs);
      const Opcode op = binary_opcode(base_op, sym->type);
      value = b_->emit_binary(op, sym->type, old, rhs_val);
    }
    b_->emit_store(sym->type, addr, value);
    return into_dst(value, dst);
  }

  Reg eval_incdec(Expr& expr, std::optional<Reg> dst) {
    Expr& target = *expr.children[0];
    VarSym* sym = target.sym;
    const Type type = target.type;
    const bool increment = expr.op == Tok::PlusPlus;
    const Opcode op = type == Type::F32 ? (increment ? Opcode::FAdd : Opcode::FSub)
                                        : (increment ? Opcode::Add : Opcode::Sub);

    auto one = [&]() {
      return type == Type::F32 ? b_->emit_movf(1.0f) : b_->emit_movi(1);
    };

    if (target.kind == ExprKind::Var && sym->storage != Storage::Global) {
      const Reg var{sym->reg_id};
      if (expr.is_prefix) {
        b_->emit(ir::make::binary(op, var, var, one()));
        return into_dst(var, dst);
      }
      const Reg old = b_->emit_copy(var);
      b_->emit(ir::make::binary(op, var, var, one()));
      return into_dst(old, dst);
    }

    const Reg addr = element_address(target);
    const Reg old = b_->emit_load(type, addr);
    const Reg updated = b_->emit_binary(op, type, old, one());
    b_->emit_store(type, addr, updated);
    return into_dst(expr.is_prefix ? updated : old, dst);
  }

  TranslationUnit& unit_;
  const SemaResult& sema_;
  ir::Module module_;
  ir::Function* fn_ = nullptr;
  Builder* b_ = nullptr;
  std::vector<BlockId> break_targets_;
  std::vector<BlockId> continue_targets_;
};

}  // namespace

ir::Module lower(TranslationUnit& unit, const SemaResult& sema,
                 std::string module_name) {
  return Lowerer(unit, sema, std::move(module_name)).run();
}

}  // namespace asipfb::fe
