#include "asip/datapath.hpp"

namespace asipfb::asip {

using ir::ChainClass;

double DatapathModel::unit_area(ChainClass c) const {
  switch (c) {
    case ChainClass::Add: return 1.0;
    case ChainClass::Subtract: return 1.1;
    case ChainClass::Multiply: return 8.0;   // Array multiplier.
    case ChainClass::Divide: return 14.0;
    case ChainClass::Shift: return 0.9;      // Barrel shifter.
    case ChainClass::Logic: return 0.4;
    case ChainClass::Compare: return 0.8;
    case ChainClass::Load: return 2.0;       // Address port + alignment.
    case ChainClass::Store: return 2.0;
    case ChainClass::FAdd: return 4.0;
    case ChainClass::FSub: return 4.2;
    case ChainClass::FMultiply: return 10.0;
    case ChainClass::FDivide: return 20.0;
    case ChainClass::FCompare: return 2.5;
    case ChainClass::FLoad: return 2.0;
    case ChainClass::FStore: return 2.0;
    case ChainClass::None: return 0.0;
  }
  return 0.0;
}

double DatapathModel::unit_delay(ChainClass c) const {
  switch (c) {
    case ChainClass::Add: return 1.0;
    case ChainClass::Subtract: return 1.0;
    case ChainClass::Multiply: return 2.5;
    case ChainClass::Divide: return 8.0;
    case ChainClass::Shift: return 0.6;
    case ChainClass::Logic: return 0.3;
    case ChainClass::Compare: return 0.9;
    case ChainClass::Load: return 2.0;      // Memory access.
    case ChainClass::Store: return 2.0;
    case ChainClass::FAdd: return 2.5;
    case ChainClass::FSub: return 2.5;
    case ChainClass::FMultiply: return 3.0;
    case ChainClass::FDivide: return 10.0;
    case ChainClass::FCompare: return 1.5;
    case ChainClass::FLoad: return 2.0;
    case ChainClass::FStore: return 2.0;
    case ChainClass::None: return 0.0;
  }
  return 0.0;
}

double DatapathModel::chain_area(const chain::Signature& sig) const {
  double area = 0.0;
  for (ChainClass c : sig.classes) area += unit_area(c);
  if (sig.classes.size() > 1) {
    area += chain_overhead_area * static_cast<double>(sig.classes.size() - 1);
  }
  return area;
}

double DatapathModel::chain_delay(const chain::Signature& sig) const {
  double delay = 0.0;
  for (ChainClass c : sig.classes) delay += unit_delay(c);
  return delay;
}

}  // namespace asipfb::asip
