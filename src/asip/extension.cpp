#include "asip/extension.hpp"

#include <algorithm>

#include "support/table.hpp"

namespace asipfb::asip {

ExtensionProposal propose_extensions(const chain::CoverageResult& coverage,
                                     std::uint64_t baseline_cycles,
                                     const DatapathModel& model,
                                     const SelectionOptions& options) {
  ExtensionProposal proposal;
  proposal.baseline_cycles = baseline_cycles;

  for (const auto& step : coverage.steps) {
    ChainedInstruction candidate;
    candidate.signature = step.signature;
    candidate.area = model.chain_area(step.signature);
    candidate.delay = model.chain_delay(step.signature);
    candidate.fits_cycle = candidate.delay <= options.cycle_budget;
    candidate.frequency = step.frequency;
    // step.cycles = sum(weight * L); occurrences collapse L ops to 1, saving
    // weight * (L - 1) cycles each.
    const auto length = static_cast<std::uint64_t>(step.signature.length());
    const std::uint64_t total_weight = length == 0 ? 0 : step.cycles / length;
    candidate.cycles_saved = total_weight * (length - 1);
    proposal.candidates.push_back(std::move(candidate));
  }

  // Greedy selection by savings density (cycles saved per unit area).
  std::vector<std::size_t> order(proposal.candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto& ca = proposal.candidates[a];
    const auto& cb = proposal.candidates[b];
    const double da = ca.area > 0 ? static_cast<double>(ca.cycles_saved) / ca.area : 0;
    const double db = cb.area > 0 ? static_cast<double>(cb.cycles_saved) / cb.area : 0;
    return da > db;
  });

  std::uint64_t saved = 0;
  for (std::size_t i : order) {
    const auto& candidate = proposal.candidates[i];
    if (!candidate.fits_cycle) continue;
    if (proposal.total_area + candidate.area > options.area_budget) continue;
    proposal.total_area += candidate.area;
    saved += candidate.cycles_saved;
    proposal.selected.push_back(candidate);
  }
  proposal.customized_cycles = baseline_cycles > saved ? baseline_cycles - saved : 0;
  return proposal;
}

std::string render_proposal(const ExtensionProposal& proposal) {
  TextTable table({"chained instruction", "freq", "area", "delay", "cycles saved",
                   "selected"});
  for (const auto& candidate : proposal.candidates) {
    const bool selected =
        std::any_of(proposal.selected.begin(), proposal.selected.end(),
                    [&](const ChainedInstruction& s) {
                      return s.signature == candidate.signature;
                    });
    table.add_row({candidate.signature.to_string(),
                   format_percent(candidate.frequency),
                   format_fixed(candidate.area, 2), format_fixed(candidate.delay, 2),
                   std::to_string(candidate.cycles_saved),
                   selected ? "yes" : (candidate.fits_cycle ? "no (area)" : "no (delay)")});
  }
  std::string out = table.render();
  out += "total extension area: " + format_fixed(proposal.total_area, 2) +
         " adder-equivalents\n";
  out += "cycles: " + std::to_string(proposal.baseline_cycles) + " -> " +
         std::to_string(proposal.customized_cycles) + "  (speedup " +
         format_fixed(proposal.speedup(), 3) + "x)\n";
  return out;
}

}  // namespace asipfb::asip
