// The "customized compiler" half of the paper's Figure 1: rewriting the
// program to use the selected chained instructions.
//
// Each committed coverage occurrence (a data-flow path p1 -> ... -> pL the
// analyzer proved fusable) is turned into one chained instruction by marking
// p2..pL as fused followers: the operations still execute — semantics are
// untouched, so differential testing still applies — but they retire in the
// leader's cycle.  Simulating the rewritten program then *measures* the
// customized ASIP's cycle count instead of estimating it.
#pragma once

#include <vector>

#include "chain/coverage.hpp"
#include "ir/function.hpp"

namespace asipfb::asip {

struct FusionStats {
  int occurrences_fused = 0;  ///< Chained-instruction instances created.
  int ops_fused = 0;          ///< Follower operations absorbed.
};

/// Applies the coverage result's committed occurrences to `module` for the
/// given signatures (empty = all steps).  The module must be the same
/// (or an identically-built) module the coverage analysis ran on — matching
/// is by instruction id.
FusionStats apply_fusion(ir::Module& module, const chain::CoverageResult& coverage,
                         const std::vector<chain::Signature>& signatures = {});

/// Clears all fusion marks.
void clear_fusion(ir::Module& module);

}  // namespace asipfb::asip
