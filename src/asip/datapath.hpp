// Datapath cost model for chained-instruction synthesis.
//
// Units are normalized to a 32-bit ripple-carry adder (area 1.0, delay 1.0),
// the customary yardstick of early-90s high-level synthesis (Gajski et al.,
// the paper's reference [6]).  A chained instruction's datapath is the
// serial composition of its operators' functional units plus forwarding
// overhead per internal link; its delay must fit the processor's cycle
// budget for single-cycle chaining.
#pragma once

#include "chain/signature.hpp"
#include "ir/opcode.hpp"

namespace asipfb::asip {

struct DatapathModel {
  double chain_overhead_area = 0.15;  ///< Mux/latch per producer->consumer link.

  /// Functional-unit area in adder equivalents.
  [[nodiscard]] double unit_area(ir::ChainClass c) const;

  /// Functional-unit latency in adder delays.
  [[nodiscard]] double unit_delay(ir::ChainClass c) const;

  /// Total datapath area of a chained instruction.
  [[nodiscard]] double chain_area(const chain::Signature& sig) const;

  /// End-to-end combinational delay of the chained datapath.
  [[nodiscard]] double chain_delay(const chain::Signature& sig) const;
};

}  // namespace asipfb::asip
