// Instruction-set extension selection — the "ASIP design" box of the
// paper's Figure 1.
//
// The compiler feedback (coverage analysis) supplies candidate chained
// instructions with realized dynamic frequencies; this module prices each
// candidate with the datapath model, rejects chains that do not fit the
// cycle-time budget, and greedily selects by cycles-saved per unit area
// under an area budget.  The resulting proposal quantifies the customized
// ASIP's speedup: every length-L occurrence collapses from L operations to
// one chained instruction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asip/datapath.hpp"
#include "chain/coverage.hpp"

namespace asipfb::asip {

/// One priced candidate chained instruction.
struct ChainedInstruction {
  chain::Signature signature;
  double area = 0.0;             ///< Datapath area (adder equivalents).
  double delay = 0.0;            ///< Combinational delay (adder delays).
  std::uint64_t cycles_saved = 0;  ///< Dynamic cycles removed if adopted.
  double frequency = 0.0;        ///< Realized dynamic frequency (percent).
  bool fits_cycle = false;       ///< Delay within the clock budget.
};

struct SelectionOptions {
  double area_budget = 40.0;      ///< Total extension area allowed.
  double cycle_budget = 8.0;      ///< Max chained delay for 1-cycle execution.
};

/// The proposed ASIP customization.
struct ExtensionProposal {
  std::vector<ChainedInstruction> candidates;  ///< All priced candidates.
  std::vector<ChainedInstruction> selected;    ///< Chosen under the budgets.
  double total_area = 0.0;
  std::uint64_t baseline_cycles = 0;
  std::uint64_t customized_cycles = 0;

  [[nodiscard]] double speedup() const {
    return customized_cycles == 0
               ? 1.0
               : static_cast<double>(baseline_cycles) /
                     static_cast<double>(customized_cycles);
  }
};

/// Builds and selects extensions from a coverage analysis.
/// `baseline_cycles` is the unoptimized profile's total dynamic op count.
[[nodiscard]] ExtensionProposal propose_extensions(
    const chain::CoverageResult& coverage, std::uint64_t baseline_cycles,
    const DatapathModel& model = {}, const SelectionOptions& options = {});

/// Renders the proposal as a designer-facing table.
[[nodiscard]] std::string render_proposal(const ExtensionProposal& proposal);

}  // namespace asipfb::asip
