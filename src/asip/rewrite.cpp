#include "asip/rewrite.hpp"

#include <algorithm>
#include <map>

namespace asipfb::asip {

FusionStats apply_fusion(ir::Module& module, const chain::CoverageResult& coverage,
                         const std::vector<chain::Signature>& signatures) {
  // Index instructions by (function, id) for direct marking.
  std::map<chain::OpRef, ir::Instr*> index;
  for (std::size_t f = 0; f < module.functions.size(); ++f) {
    for (auto& block : module.functions[f].blocks) {
      for (auto& instr : block.instrs) {
        index[{static_cast<ir::FuncId>(f), instr.id}] = &instr;
      }
    }
  }

  auto selected = [&](const chain::Signature& sig) {
    if (signatures.empty()) return true;
    return std::find(signatures.begin(), signatures.end(), sig) != signatures.end();
  };

  FusionStats stats;
  for (const auto& step : coverage.steps) {
    if (!selected(step.signature)) continue;
    for (const auto& match : step.matches) {
      bool all_found = true;
      for (const auto& op : match) {
        if (index.find(op) == index.end()) all_found = false;
      }
      if (!all_found || match.size() < 2) continue;
      // Only fuse when every op executes exactly as often as the leader:
      // a follower on a more-frequent path would otherwise ride free on
      // executions where the chain never formed.
      bool uniform = true;
      for (const auto& op : match) {
        if (index[op]->exec_count != index[match[0]]->exec_count) uniform = false;
      }
      if (!uniform) continue;
      // The first op is the leader (charged one cycle); the rest follow.
      for (std::size_t k = 1; k < match.size(); ++k) {
        index[match[k]]->fused_follower = true;
      }
      ++stats.occurrences_fused;
      stats.ops_fused += static_cast<int>(match.size() - 1);
    }
  }
  return stats;
}

void clear_fusion(ir::Module& module) {
  for (auto& fn : module.functions) {
    for (auto& block : fn.blocks) {
      for (auto& instr : block.instrs) instr.fused_follower = false;
    }
  }
}

}  // namespace asipfb::asip
