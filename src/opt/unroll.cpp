#include "opt/unroll.hpp"

#include <map>
#include <set>
#include <string>

#include "analysis/loops.hpp"

namespace asipfb::opt {

using ir::BlockId;
using ir::Instr;

namespace {

/// Replicates one loop. `blocks` is the natural-loop block set.
void replicate_loop(ir::Function& fn, const analysis::NaturalLoop& loop, int factor) {
  const std::set<BlockId> members(loop.blocks.begin(), loop.blocks.end());
  const BlockId header = loop.header;

  // Split profile counts: each of the `factor` copies carries 1/factor of
  // the original count; the original keeps the remainder so totals match.
  std::map<BlockId, std::vector<std::uint64_t>> copy_counts;
  for (BlockId b : loop.blocks) {
    auto& counts = copy_counts[b];
    for (auto& instr : fn.blocks[b].instrs) {
      const std::uint64_t share = instr.exec_count / static_cast<std::uint64_t>(factor);
      counts.push_back(share);
      instr.exec_count -= share * static_cast<std::uint64_t>(factor - 1);
    }
  }

  // Create block shells for each copy first so targets can be remapped.
  std::vector<std::map<BlockId, BlockId>> maps(static_cast<std::size_t>(factor - 1));
  for (int k = 0; k < factor - 1; ++k) {
    for (BlockId b : loop.blocks) {
      const std::string name = fn.blocks[b].name + ".u" + std::to_string(k + 1);
      maps[static_cast<std::size_t>(k)][b] = fn.add_block(name);
    }
  }

  // Fill the copies.
  for (int k = 0; k < factor - 1; ++k) {
    const auto& map = maps[static_cast<std::size_t>(k)];
    for (BlockId b : loop.blocks) {
      const auto& counts = copy_counts[b];
      auto& dst = fn.blocks[map.at(b)];
      for (std::size_t i = 0; i < fn.blocks[b].instrs.size(); ++i) {
        Instr instr = fn.blocks[b].instrs[i];  // Copy (same registers).
        instr.exec_count = counts[i];
        const ir::InstrId origin = instr.origin;
        instr.id = ir::kNoInstr;
        fn.assign_id(instr);
        instr.origin = origin;
        // Remap in-loop targets; `header` is special: it is only reachable
        // from inside the loop via the back edge, which must thread to the
        // next copy (or back to the original for the last copy).
        auto remap = [&](BlockId target) -> BlockId {
          if (target == ir::kNoBlock) return target;
          if (target == header) {
            if (k + 1 < factor - 1) {
              return maps[static_cast<std::size_t>(k + 1)].at(header);
            }
            return header;
          }
          const auto found = map.find(target);
          return found != map.end() ? found->second : target;
        };
        instr.target0 = remap(instr.target0);
        instr.target1 = remap(instr.target1);
        dst.instrs.push_back(std::move(instr));
      }
    }
  }

  // Redirect the original loop's back edges into the first copy.
  const BlockId first_copy_header = maps[0].at(header);
  for (BlockId b : loop.blocks) {
    auto& term = fn.blocks[b].terminator();
    if (term.target0 == header) term.target0 = first_copy_header;
    if (term.target1 == header) term.target1 = first_copy_header;
  }
}

}  // namespace

int unroll_loops(ir::Function& fn, const UnrollOptions& options) {
  if (options.factor < 2) return 0;
  const auto loops = analysis::find_loops(fn);

  // Innermost = contains no other loop's header.
  auto innermost = [&](const analysis::NaturalLoop& loop) {
    for (const auto& other : loops) {
      if (other.header != loop.header && loop.contains(other.header)) return false;
    }
    return true;
  };

  std::set<BlockId> used;
  int unrolled = 0;
  for (const auto& loop : loops) {
    if (!innermost(loop)) continue;
    std::size_t size = 0;
    for (BlockId b : loop.blocks) size += fn.blocks[b].instrs.size();
    if (size > options.max_loop_instrs) continue;
    bool overlaps = false;
    for (BlockId b : loop.blocks) {
      if (used.count(b) != 0) overlaps = true;
    }
    if (overlaps) continue;
    for (BlockId b : loop.blocks) used.insert(b);
    replicate_loop(fn, loop, options.factor);
    ++unrolled;
  }
  return unrolled;
}

}  // namespace asipfb::opt
