// Instruction-level-parallelism characterization (the paper's section 8
// future work: feedback on multiple-issue architectures).
//
// Each block is list-scheduled onto a W-issue VLIW: true dependences
// serialize (+1 cycle), output dependences serialize, anti-dependences allow
// same-cycle issue (reads before writes), stores/calls are memory barriers,
// and the terminator issues last.  Weighting schedule lengths by block
// execution counts gives the suite's achievable ops/cycle at width W.
#pragma once

#include <cstdint>

#include "ir/function.hpp"

namespace asipfb::opt {

struct IlpResult {
  std::uint64_t dynamic_ops = 0;     ///< Profiled operation count.
  std::uint64_t dynamic_cycles = 0;  ///< Weighted schedule cycles.
  double ops_per_cycle = 0.0;
};

/// Measures achievable ILP of a profiled module at the given issue width.
[[nodiscard]] IlpResult measure_ilp(const ir::Module& module, int issue_width);

}  // namespace asipfb::opt
