// Canonicalization passes run on freshly lowered IR (all optimization
// levels see the same cleaned baseline, like gcc's local optimizations in
// the paper's step 1): local value numbering / CSE, dead code elimination,
// and CFG simplification.
#pragma once

#include "ir/function.hpp"

namespace asipfb::opt {

/// Local (per-block) value numbering: CSE of pure computations, copy
/// canonicalization.  Returns the number of instructions rewritten to copies.
int local_value_numbering(ir::Function& fn);

/// Removes pure instructions whose results are never read (whole-function
/// usage counting, iterated to fixpoint).  Returns instructions removed.
int dead_code_elimination(ir::Function& fn);

/// Removes unreachable blocks, forwards branches through trivial
/// (branch-only) blocks, and merges single-successor/single-predecessor
/// block chains.  Returns the number of blocks eliminated.
int simplify_cfg(ir::Function& fn);

/// Keeps only blocks marked in `keep` (entry must be kept), remapping all
/// branch targets.  Exposed for use by other passes.
void compact_blocks(ir::Function& fn, const std::vector<bool>& keep);

/// Full canonicalization of a module: LVN + DCE + CFG simplification per
/// function, iterated until stable.
void canonicalize(ir::Module& module);

}  // namespace asipfb::opt
