#include "opt/percolate.hpp"

#include <algorithm>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/liveness.hpp"
#include "opt/cleanup.hpp"

namespace asipfb::opt {

using ir::BlockId;
using ir::Instr;
using ir::Opcode;
using ir::Reg;

namespace {

[[nodiscard]] bool is_load(const Instr& instr) {
  return instr.op == Opcode::Load || instr.op == Opcode::FLoad;
}

[[nodiscard]] bool is_memory_barrier(const Instr& instr) {
  return instr.op == Opcode::Store || instr.op == Opcode::FStore ||
         instr.op == Opcode::Call;
}

/// Computes the closed set of instructions of `block` that can legally move
/// together to the end of its unique predecessor `pred` (above that block's
/// conditional branch).  See percolate.hpp for the motion model.
std::vector<bool> movable_set(const ir::BasicBlock& block,
                              const ir::BasicBlock& pred,
                              const std::vector<BlockId>& other_succs,
                              const analysis::Liveness& liveness,
                              const PercolationOptions& options) {
  const std::size_t n = block.instrs.size();
  std::vector<bool> movable(n, false);

  // Initial per-op eligibility.
  bool barrier_before = false;
  for (std::size_t i = 0; i < n; ++i) {
    const Instr& instr = block.instrs[i];
    if (instr.is_terminator()) break;
    const bool eligible =
        ir::speculable(instr.op) || (options.speculate_loads && is_load(instr));
    bool ok = eligible && instr.dst.has_value();
    // Loads may not cross stores/calls that stay behind (stores never move).
    if (ok && is_load(instr) && barrier_before) ok = false;
    // The predecessor's branch must not read the destination's old value.
    if (ok) {
      for (Reg a : pred.terminator().args) {
        if (a.id == instr.dst->id) ok = false;
      }
    }
    // Speculation: the destination must be dead along the branch's other
    // edges (this is what blocks un-renamed accumulators, and what register
    // renaming unlocks).
    if (ok) {
      for (BlockId s : other_succs) {
        if (liveness.live_in(s, *instr.dst)) ok = false;
      }
    }
    movable[i] = ok;
    if (is_memory_barrier(instr)) barrier_before = true;
  }

  // Close the set under dependence constraints.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (!movable[i]) continue;
      const Instr& instr = block.instrs[i];
      const std::uint32_t dst = instr.dst->id;
      bool ok = true;
      for (std::size_t j = 0; j < i && ok; ++j) {
        if (movable[j]) continue;  // Moves along, relative order kept.
        const Instr& earlier = block.instrs[j];
        // True dependence: an immovable earlier op defines one of our args.
        if (earlier.dst) {
          for (Reg a : instr.args) {
            if (a.id == earlier.dst->id) ok = false;
          }
          // Output dependence on an immovable def of the same register.
          if (earlier.dst->id == dst) ok = false;
        }
        // Anti dependence: an immovable earlier op reads our destination.
        for (Reg a : earlier.args) {
          if (a.id == dst) ok = false;
        }
      }
      if (ok && options.chain_preserving) {
        // Keep producer-consumer chains co-located: if any instruction that
        // stays behind reads our result, stay with it.
        for (std::size_t j = i + 1; j < n && ok; ++j) {
          if (movable[j]) continue;
          for (Reg a : block.instrs[j].args) {
            if (a.id == dst) ok = false;
          }
        }
      }
      if (!ok) {
        movable[i] = false;
        changed = true;
      }
    }
  }
  return movable;
}

/// One hoisting sweep over the function; returns ops moved (0 = fixpoint).
int hoist_pass(ir::Function& fn, const PercolationOptions& options) {
  const auto preds = analysis::predecessors(fn);
  const analysis::Liveness liveness(fn);

  for (std::size_t nb = 0; nb < fn.blocks.size(); ++nb) {
    const BlockId n = static_cast<BlockId>(nb);
    if (n == 0 || preds[n].size() != 1) continue;
    const BlockId m = preds[n][0];
    if (m == n) continue;
    auto& block = fn.blocks[n];
    auto& pred_block = fn.blocks[m];
    if (pred_block.terminator().op != Opcode::CondBr) continue;

    std::vector<BlockId> other_succs;
    for (BlockId s : pred_block.successors()) {
      if (s != n) other_succs.push_back(s);
    }
    if (other_succs.empty()) continue;

    const auto movable =
        movable_set(block, pred_block, other_succs, liveness, options);
    const auto moved = static_cast<int>(
        std::count(movable.begin(), movable.end(), true));
    if (moved == 0) continue;

    std::vector<Instr> hoisted;
    std::vector<Instr> kept;
    hoisted.reserve(static_cast<std::size_t>(moved));
    kept.reserve(block.instrs.size());
    for (std::size_t i = 0; i < block.instrs.size(); ++i) {
      if (i < movable.size() && movable[i]) {
        hoisted.push_back(std::move(block.instrs[i]));
      } else {
        kept.push_back(std::move(block.instrs[i]));
      }
    }
    block.instrs = std::move(kept);
    pred_block.instrs.insert(pred_block.instrs.end() - 1,
                             std::make_move_iterator(hoisted.begin()),
                             std::make_move_iterator(hoisted.end()));
    // Liveness/preds are stale after a move; caller re-invokes us.
    return moved;
  }
  return 0;
}

}  // namespace

PercolationStats percolate(ir::Function& fn, const PercolationOptions& options) {
  PercolationStats stats;
  for (int pass = 0; pass < options.max_passes; ++pass) {
    ++stats.passes;
    int work = 0;

    // Straight-line merging (move-op across unconditional edges en masse).
    const int merged = simplify_cfg(fn);
    stats.blocks_merged += merged;
    work += merged;

    // Speculative hoisting above conditional branches.
    if (options.speculate) {
      for (;;) {
        const int moved = hoist_pass(fn, options);
        if (moved == 0) break;
        stats.ops_hoisted += moved;
        work += moved;
      }
    }

    if (work == 0) break;
  }
  return stats;
}

}  // namespace asipfb::opt
