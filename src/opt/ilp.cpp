#include "opt/ilp.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace asipfb::opt {

namespace {

using ir::Opcode;

[[nodiscard]] bool is_memory_op(const ir::Instr& instr) {
  switch (instr.op) {
    case Opcode::Load: case Opcode::FLoad:
    case Opcode::Store: case Opcode::FStore:
    case Opcode::Call:
      return true;
    default:
      return false;
  }
}

[[nodiscard]] bool is_barrier(const ir::Instr& instr) {
  return instr.op == Opcode::Store || instr.op == Opcode::FStore ||
         instr.op == Opcode::Call;
}

/// Schedule length of one block at the given width.
int schedule_block(const ir::BasicBlock& block, int width) {
  const std::size_t n = block.instrs.size();
  std::vector<int> cycle(n, 1);
  std::map<std::uint32_t, std::size_t> last_def;   // reg -> instr index
  std::map<std::uint32_t, std::size_t> last_use;
  std::vector<int> issued_in_cycle;  // 1-based; index 0 unused.
  issued_in_cycle.push_back(0);

  int barrier_cycle = 0;            // Cycle of the last store/call.
  int last_mem_cycle = 0;           // For barrier ordering vs earlier loads.
  int length = 0;

  for (std::size_t i = 0; i < n; ++i) {
    const auto& instr = block.instrs[i];
    int earliest = 1;

    for (ir::Reg a : instr.args) {
      const auto def = last_def.find(a.id);
      if (def != last_def.end()) earliest = std::max(earliest, cycle[def->second] + 1);
    }
    if (instr.dst) {
      const auto def = last_def.find(instr.dst->id);
      if (def != last_def.end()) earliest = std::max(earliest, cycle[def->second] + 1);
      const auto use = last_use.find(instr.dst->id);
      if (use != last_use.end()) earliest = std::max(earliest, cycle[use->second]);
    }
    if (is_memory_op(instr)) {
      earliest = std::max(earliest, barrier_cycle + 1);
      if (is_barrier(instr)) earliest = std::max(earliest, last_mem_cycle + 1);
    }
    if (instr.is_terminator()) earliest = std::max(earliest, length);

    // First cycle at or after `earliest` with a free issue slot.
    int c = std::max(earliest, 1);
    for (;;) {
      while (static_cast<std::size_t>(c) >= issued_in_cycle.size()) {
        issued_in_cycle.push_back(0);
      }
      if (issued_in_cycle[static_cast<std::size_t>(c)] < width) break;
      ++c;
    }
    ++issued_in_cycle[static_cast<std::size_t>(c)];
    cycle[i] = c;
    length = std::max(length, c);

    for (ir::Reg a : instr.args) last_use[a.id] = i;
    if (instr.dst) last_def[instr.dst->id] = i;
    if (is_barrier(instr)) barrier_cycle = std::max(barrier_cycle, c);
    if (is_memory_op(instr)) last_mem_cycle = std::max(last_mem_cycle, c);
  }
  return std::max(length, 1);
}

}  // namespace

IlpResult measure_ilp(const ir::Module& module, int issue_width) {
  IlpResult result;
  for (const auto& fn : module.functions) {
    for (const auto& block : fn.blocks) {
      const std::uint64_t count = block.exec_count();
      for (const auto& instr : block.instrs) result.dynamic_ops += instr.exec_count;
      if (count == 0) continue;
      const int length = schedule_block(block, std::max(issue_width, 1));
      result.dynamic_cycles += static_cast<std::uint64_t>(length) * count;
    }
  }
  result.ops_per_cycle =
      result.dynamic_cycles == 0
          ? 0.0
          : static_cast<double>(result.dynamic_ops) /
                static_cast<double>(result.dynamic_cycles);
  return result;
}

}  // namespace asipfb::opt
