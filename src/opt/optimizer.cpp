#include "opt/optimizer.hpp"

#include "opt/cleanup.hpp"
#include "opt/rename.hpp"

namespace asipfb::opt {

std::string_view to_string(OptLevel level) {
  switch (level) {
    case OptLevel::O0: return "O0";
    case OptLevel::O1: return "O1";
    case OptLevel::O2: return "O2";
  }
  return "?";
}

std::optional<OptLevel> parse_opt_level(std::string_view text) {
  for (auto level : {OptLevel::O0, OptLevel::O1, OptLevel::O2}) {
    if (text == to_string(level)) return level;
  }
  return std::nullopt;
}

OptimizeStats optimize(ir::Module& module, OptLevel level,
                       const OptimizeOptions& options) {
  OptimizeStats stats;
  if (level == OptLevel::O0) return stats;

  PercolationOptions percolation = options.percolation;
  // Renaming historically let move-op hoist operations individually; without
  // it the scheduler keeps dependence chains together (see percolate.hpp).
  percolation.chain_preserving = level == OptLevel::O1;

  for (auto& fn : module.functions) {
    stats.loops_unrolled += unroll_loops(fn, options.unroll);
    if (level == OptLevel::O2) {
      stats.repair_copies += rename_registers(fn);
    }
    const PercolationStats p = percolate(fn, percolation);
    stats.percolation.blocks_merged += p.blocks_merged;
    stats.percolation.ops_hoisted += p.ops_hoisted;
    stats.percolation.passes += p.passes;
    if (options.final_dce) {
      stats.dce_removed += dead_code_elimination(fn);
    }
  }
  return stats;
}

}  // namespace asipfb::opt
