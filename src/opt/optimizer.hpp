// The paper's three optimization levels (section 5, step 3):
//   O0 — no optimization,
//   O1 — loop pipelining + percolation scheduling, without renaming,
//   O2 — loop pipelining + percolation scheduling + register renaming.
//
// All levels operate on a canonicalized, *profiled* module: execution counts
// ride along through every transformation (unrolling splits them; motion
// keeps them), so the downstream sequence analysis can weight occurrences
// without re-simulation.
#pragma once

#include <optional>
#include <string_view>

#include "ir/function.hpp"
#include "opt/percolate.hpp"
#include "opt/unroll.hpp"

namespace asipfb::opt {

enum class OptLevel { O0, O1, O2 };

[[nodiscard]] std::string_view to_string(OptLevel level);

/// Round-trip inverse of to_string(): "O0"/"O1"/"O2" (case-sensitive);
/// nullopt for anything else.
[[nodiscard]] std::optional<OptLevel> parse_opt_level(std::string_view text);

struct OptimizeOptions {
  UnrollOptions unroll;
  PercolationOptions percolation;
  bool final_dce = true;  ///< Drop dead repair copies / unused temporaries.
};

struct OptimizeStats {
  int loops_unrolled = 0;
  int repair_copies = 0;  ///< Copies inserted by renaming (O2 only).
  PercolationStats percolation;
  int dce_removed = 0;
};

/// Applies `level` to the whole module in place.
OptimizeStats optimize(ir::Module& module, OptLevel level,
                       const OptimizeOptions& options = {});

}  // namespace asipfb::opt
