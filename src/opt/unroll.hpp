// Test-preserving loop unrolling (the pipelining enabler).
//
// Each selected innermost loop's body is replicated `factor` times with the
// original exit test kept between copies, and the back edge threaded
// original -> copy1 -> ... -> original.  This is exactly semantics-preserving
// (every iteration is still guarded) and gives percolation scheduling the
// room to move operations of iteration i+1 up beside iteration i — the
// paper's "loop pipelining" effect that exposes cross-iteration chains such
// as add-multiply.
#pragma once

#include "ir/function.hpp"

namespace asipfb::opt {

struct UnrollOptions {
  int factor = 2;                    ///< Total copies of the body (>= 2).
  std::size_t max_loop_instrs = 200; ///< Skip loops larger than this.
};

/// Unrolls eligible innermost loops; profile counts are split across copies
/// so the module's total dynamic op count is preserved.  Returns the number
/// of loops unrolled.
int unroll_loops(ir::Function& fn, const UnrollOptions& options = {});

}  // namespace asipfb::opt
