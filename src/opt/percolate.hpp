// Percolation scheduling (Nicolau 1985 / Potasman 1991, move-op core).
//
// Repeatedly (a) merges single-entry straight-line block chains and
// (b) hoists pure (and, optionally, load) operations from a block into its
// unique predecessor across that predecessor's conditional branch
// (speculation), subject to dependence and liveness legality.  The effect on
// the program graph matches the paper's use of the UCI VLIW compiler: data
// flow that crosses basic-block boundaries in the sequential code becomes
// visible inside one scheduling region.
#pragma once

#include "ir/function.hpp"

namespace asipfb::opt {

struct PercolationOptions {
  int max_passes = 64;         ///< Fixpoint iteration budget.
  bool speculate = true;       ///< Allow hoisting above conditional branches.
  bool speculate_loads = true; ///< Loads may speculate (sim gives OOB reads 0).
  /// When true (the no-renaming configuration), an op only moves if every
  /// in-block consumer of its result moves with it, so producer-consumer
  /// chains stay co-located.  With register renaming the historical
  /// compilers moved ops individually "as high as possible" — set false —
  /// which is exactly the chain-eroding behaviour the paper reports.
  bool chain_preserving = true;
};

struct PercolationStats {
  int blocks_merged = 0;  ///< Straight-line merges performed.
  int ops_hoisted = 0;    ///< Operations speculated above a branch.
  int passes = 0;         ///< Iterations until fixpoint (or budget).
};

PercolationStats percolate(ir::Function& fn, const PercolationOptions& options = {});

}  // namespace asipfb::opt
