// Block-local maximal register renaming (the paper's optimization level 3
// ingredient).
//
// Every definition inside a block gets a fresh register; subsequent uses in
// the block follow the new name, and copies back to the original registers
// are inserted at the block exit for live-out values.  Renaming removes
// intra-block anti- and output-dependences so percolation can move
// operations much higher — but cross-block consumers now read the repair
// copy instead of the producer, which is precisely the paper's observation
// that renaming *erodes* chainable sequences while helping parallelism.
#pragma once

#include "ir/function.hpp"

namespace asipfb::opt {

/// Renames all block-local definitions; returns the number of repair copies
/// inserted.
int rename_registers(ir::Function& fn);

}  // namespace asipfb::opt
