#include "opt/cleanup.hpp"

#include <cstring>
#include <map>
#include <tuple>
#include <vector>

#include "analysis/cfg.hpp"

namespace asipfb::opt {

using ir::BlockId;
using ir::Instr;
using ir::Opcode;
using ir::Reg;

namespace {

[[nodiscard]] bool commutative(Opcode op) {
  switch (op) {
    case Opcode::Add: case Opcode::Mul:
    case Opcode::FAdd: case Opcode::FMul:
    case Opcode::And: case Opcode::Or: case Opcode::Xor:
    case Opcode::CmpEq: case Opcode::CmpNe:
    case Opcode::FCmpEq: case Opcode::FCmpNe:
      return true;
    default:
      return false;
  }
}

/// Pure value computations eligible for CSE.  Loads are excluded (no memory
/// disambiguation in LVN); intrinsics are pure and included.
[[nodiscard]] bool cseable(const Instr& instr) {
  return instr.is_pure() && instr.dst.has_value();
}

std::uint32_t float_key(float f) {
  std::uint32_t u = 0;
  std::memcpy(&u, &f, sizeof u);
  return u;
}

}  // namespace

int local_value_numbering(ir::Function& fn) {
  int rewritten = 0;
  using ValueNum = std::uint32_t;
  // Key: opcode, immediate payload, intrinsic kind, operand value numbers.
  using ExprKey = std::tuple<Opcode, std::int32_t, std::uint32_t, int,
                             std::vector<ValueNum>>;

  for (auto& block : fn.blocks) {
    ValueNum next_vn = 1;
    std::map<std::uint32_t, ValueNum> reg_vn;   // Register -> current value.
    std::map<ExprKey, ValueNum> expr_vn;        // Expression -> value.
    std::map<ValueNum, Reg> holder;             // Value -> a register holding it.

    auto vn_of_reg = [&](Reg r) {
      const auto it = reg_vn.find(r.id);
      if (it != reg_vn.end()) return it->second;
      const ValueNum vn = next_vn++;
      reg_vn[r.id] = vn;
      holder.emplace(vn, r);
      return vn;
    };
    auto holder_valid = [&](ValueNum vn, Reg r) {
      const auto it = reg_vn.find(r.id);
      return it != reg_vn.end() && it->second == vn;
    };

    for (auto& instr : block.instrs) {
      // Canonicalize operands to the first live holder of their value
      // (this is the copy-propagation half of LVN).
      std::vector<ValueNum> arg_vns;
      arg_vns.reserve(instr.args.size());
      for (auto& arg : instr.args) {
        const ValueNum vn = vn_of_reg(arg);
        arg_vns.push_back(vn);
        const auto hold = holder.find(vn);
        if (hold != holder.end() && holder_valid(vn, hold->second)) {
          arg = hold->second;
        }
      }

      if (instr.op == Opcode::Copy) {
        // The copy's destination now holds the source's value.
        reg_vn[instr.dst->id] = arg_vns[0];
        holder.try_emplace(arg_vns[0], instr.args[0]);
        continue;
      }

      if (!cseable(instr)) {
        // Opaque result (load, call result, ...): fresh value.
        if (instr.dst) {
          const ValueNum vn = next_vn++;
          reg_vn[instr.dst->id] = vn;
          holder[vn] = *instr.dst;
        }
        continue;
      }

      std::vector<ValueNum> key_args = arg_vns;
      if (commutative(instr.op) && key_args.size() == 2 && key_args[0] > key_args[1]) {
        std::swap(key_args[0], key_args[1]);
      }
      ExprKey key{instr.op, instr.imm_i, float_key(instr.imm_f),
                  static_cast<int>(instr.intrinsic), std::move(key_args)};

      const auto found = expr_vn.find(key);
      if (found != expr_vn.end()) {
        const auto hold = holder.find(found->second);
        if (hold != holder.end() && holder_valid(found->second, hold->second) &&
            hold->second.id != instr.dst->id) {
          // Same value already available: rewrite to a copy of the holder.
          const Reg dst = *instr.dst;
          const Reg src = hold->second;
          instr.op = Opcode::Copy;
          instr.args = {src};
          instr.imm_i = 0;
          instr.imm_f = 0.0f;
          instr.intrinsic = ir::IntrinsicKind::None;
          instr.dst = dst;
          reg_vn[dst.id] = found->second;
          ++rewritten;
          continue;
        }
      }
      const ValueNum vn = next_vn++;
      expr_vn[std::move(key)] = vn;
      reg_vn[instr.dst->id] = vn;
      holder[vn] = *instr.dst;
    }
  }
  return rewritten;
}

int dead_code_elimination(ir::Function& fn) {
  int removed_total = 0;
  for (;;) {
    std::vector<std::uint32_t> uses(fn.reg_types.size(), 0);
    for (const auto& block : fn.blocks) {
      for (const auto& instr : block.instrs) {
        for (Reg a : instr.args) ++uses[a.id];
      }
    }
    int removed = 0;
    for (auto& block : fn.blocks) {
      std::vector<Instr> kept;
      kept.reserve(block.instrs.size());
      for (auto& instr : block.instrs) {
        const bool removable =
            !instr.is_terminator() && instr.dst &&
            uses[instr.dst->id] == 0 &&
            (instr.is_pure() || instr.op == Opcode::Load || instr.op == Opcode::FLoad);
        if (removable) {
          ++removed;
        } else {
          kept.push_back(std::move(instr));
        }
      }
      block.instrs = std::move(kept);
    }
    removed_total += removed;
    if (removed == 0) break;
  }
  return removed_total;
}

void compact_blocks(ir::Function& fn, const std::vector<bool>& keep) {
  std::vector<BlockId> remap(fn.blocks.size(), ir::kNoBlock);
  std::vector<ir::BasicBlock> new_blocks;
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    if (!keep[b]) continue;
    remap[b] = static_cast<BlockId>(new_blocks.size());
    new_blocks.push_back(std::move(fn.blocks[b]));
  }
  for (auto& block : new_blocks) {
    auto& term = block.terminator();
    if (term.target0 != ir::kNoBlock) term.target0 = remap[term.target0];
    if (term.target1 != ir::kNoBlock) term.target1 = remap[term.target1];
  }
  fn.blocks = std::move(new_blocks);
}

int simplify_cfg(ir::Function& fn) {
  int eliminated = 0;
  bool changed = true;
  while (changed) {
    changed = false;

    // 1. Forward branches through trivial blocks (a single Br instruction).
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
      auto& block = fn.blocks[b];
      auto& term = block.terminator();
      auto forward = [&](BlockId target) {
        // Follow chains of trivial blocks, guarding against cycles.
        BlockId current = target;
        int hops = 0;
        while (hops++ < 64) {
          const auto& t = fn.blocks[current];
          if (t.instrs.size() != 1 || t.instrs[0].op != Opcode::Br) break;
          const BlockId next = t.instrs[0].target0;
          if (next == current) break;
          current = next;
        }
        return current;
      };
      if (term.op == Opcode::Br) {
        const BlockId fwd = forward(term.target0);
        if (fwd != term.target0 && fwd != static_cast<BlockId>(b)) {
          term.target0 = fwd;
          changed = true;
        }
      } else if (term.op == Opcode::CondBr) {
        const BlockId fwd0 = forward(term.target0);
        const BlockId fwd1 = forward(term.target1);
        if (fwd0 != term.target0 || fwd1 != term.target1) {
          term.target0 = fwd0;
          term.target1 = fwd1;
          changed = true;
        }
      }
    }

    // 2. Merge single-successor blocks into single-predecessor successors.
    const auto preds = analysis::predecessors(fn);
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
      auto& block = fn.blocks[b];
      auto& term = block.terminator();
      if (term.op != Opcode::Br) continue;
      const BlockId succ = term.target0;
      if (succ == static_cast<BlockId>(b) || preds[succ].size() != 1) continue;
      if (succ == 0) continue;  // Keep the entry block first.
      // Splice the successor's instructions over our Br.
      block.instrs.pop_back();
      for (auto& instr : fn.blocks[succ].instrs) {
        block.instrs.push_back(std::move(instr));
      }
      // Leave the successor as an unreachable trivial shell; removed below.
      fn.blocks[succ].instrs.clear();
      fn.blocks[succ].instrs.push_back(ir::make::br(static_cast<BlockId>(b)));
      fn.assign_id(fn.blocks[succ].instrs.back());
      changed = true;
      break;  // Predecessor lists are stale; restart.
    }

    // 3. Drop unreachable blocks.
    const auto reachable = analysis::reachable_blocks(fn);
    bool any_unreachable = false;
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
      if (!reachable[b]) any_unreachable = true;
    }
    if (any_unreachable) {
      int before = static_cast<int>(fn.blocks.size());
      compact_blocks(fn, reachable);
      eliminated += before - static_cast<int>(fn.blocks.size());
      changed = true;
    }
  }
  return eliminated;
}

void canonicalize(ir::Module& module) {
  for (auto& fn : module.functions) {
    for (int round = 0; round < 8; ++round) {
      int work = 0;
      work += simplify_cfg(fn);
      work += local_value_numbering(fn);
      work += dead_code_elimination(fn);
      if (work == 0) break;
    }
  }
}

}  // namespace asipfb::opt
