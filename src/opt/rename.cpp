#include "opt/rename.hpp"

#include <map>

#include "analysis/liveness.hpp"

namespace asipfb::opt {

using ir::Instr;
using ir::Reg;

int rename_registers(ir::Function& fn) {
  const analysis::Liveness liveness(fn);
  int copies = 0;

  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    auto& block = fn.blocks[b];
    std::map<std::uint32_t, Reg> current;  // Original reg -> latest name.

    for (auto& instr : block.instrs) {
      for (auto& arg : instr.args) {
        const auto it = current.find(arg.id);
        if (it != current.end()) arg = it->second;
      }
      if (instr.dst && !instr.is_terminator()) {
        const Reg original = *instr.dst;
        const Reg fresh = fn.new_reg(fn.type_of(original));
        current[original.id] = fresh;
        instr.dst = fresh;
      }
    }

    // Repair copies restore live-out originals before the terminator.
    const std::uint64_t block_count = block.exec_count();
    std::vector<Instr> repairs;
    for (const auto& [orig_id, fresh] : current) {
      const Reg original{orig_id};
      if (!liveness.live_out(static_cast<ir::BlockId>(b), original)) continue;
      Instr copy = ir::make::copy(original, fresh);
      copy.exec_count = block_count;
      fn.assign_id(copy);
      repairs.push_back(std::move(copy));
      ++copies;
    }
    block.instrs.insert(block.instrs.end() - 1,
                        std::make_move_iterator(repairs.begin()),
                        std::make_move_iterator(repairs.end()));
  }
  return copies;
}

}  // namespace asipfb::opt
