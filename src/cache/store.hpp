// Persistent content-addressed artifact store.
//
// One directory holds one entry per (artifact kind, content key): the file
// name is `<kind>-<key>.art`, the content is a framed payload produced by
// cache/serialize.hpp.  Entries are immutable once written — a key change
// is the only way content changes — which is what makes the store safe to
// share between threads, Store instances, and whole processes:
//
//   * Writes go to a private temp file in the same directory and are
//     published with rename(2), which is atomic on POSIX.  Two replicas
//     racing on the same key both write valid bytes for the same value
//     (serialization is canonical), so whichever rename lands last is
//     indistinguishable from whichever landed first.  A crash mid-write
//     leaves only a temp file, never a half-written entry.
//   * Reads validate a framing header (magic, format version, artifact
//     kind, engine-version string, payload length, FNV-1a checksum).
//     Anything malformed — truncation, bit flips, a different engine
//     version — is a counted miss and the caller recomputes cold; a
//     corrupt file is additionally unlinked so it cannot keep costing
//     validation work.  load() never throws and never returns bad bytes.
//   * An LRU-ish size cap: hits refresh the entry's mtime, and when the
//     directory outgrows StoreOptions::max_bytes the oldest-mtime entries
//     are evicted until it fits.  Eviction is best-effort and safe against
//     concurrent processes doing the same.
//
// kEngineVersion below is the single invalidation knob: it is baked into
// both the content keys (cache::baseline_key) and every entry header, so
// bumping it makes every existing entry a miss.  Bump it whenever any
// stage's computed artifacts could change — compiler, optimizer, detector,
// coverage, selection, or the serialization format itself.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cache/serialize.hpp"

namespace asipfb::cache {

/// The engine/ABI version every key and entry header carries.  Bump this
/// one string to invalidate every cached artifact after a change to any
/// pipeline stage or to the serialization format.
inline constexpr std::string_view kEngineVersion = "asipfb-engine-pr8.1";

struct StoreOptions {
  std::filesystem::path dir;                     ///< Created if missing.
  std::uint64_t max_bytes = 256ull * 1024 * 1024;  ///< LRU-ish eviction cap.
  bool fsync = false;  ///< fsync entry + directory on publish (crash durability).
  std::string engine_version = std::string(kEngineVersion);
};

/// Monotonic counters, readable while other threads use the store.
struct StoreStats {
  std::uint64_t hits = 0;       ///< load() returned a validated payload.
  std::uint64_t misses = 0;     ///< load() found nothing usable (corrupt included).
  std::uint64_t writes = 0;     ///< save() published an entry.
  std::uint64_t evictions = 0;  ///< Entries removed by the size cap.
  std::uint64_t corrupt = 0;    ///< Malformed entries detected (and unlinked).
};

/// One entry as seen on disk (introspection for tests / tooling).
struct EntryInfo {
  Artifact kind = Artifact::kPrepared;
  std::string key;               ///< 32-hex content key.
  std::uint64_t payload_bytes = 0;
};

class Store {
 public:
  /// Opens (creating if needed) the cache directory.  Throws
  /// std::runtime_error if the directory cannot be created — callers wire
  /// the cache at startup and want that loud.
  explicit Store(StoreOptions options);

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  /// Returns the validated payload for (kind, key), or nullopt on any
  /// miss: absent entry, truncated/corrupt file (unlinked + counted),
  /// wrong engine version.  Refreshes the entry's mtime on a hit.
  /// Never throws.
  [[nodiscard]] std::optional<std::string> load(Artifact kind,
                                                std::string_view key);

  /// Publishes payload under (kind, key) via temp-file + rename, then
  /// enforces the size cap.  Best-effort: any I/O failure is swallowed
  /// (the cache is an accelerator, not a system of record).  Never throws.
  void save(Artifact kind, std::string_view key, std::string_view payload);

  [[nodiscard]] StoreStats stats() const;

  /// Every well-named entry currently on disk (no payload validation).
  [[nodiscard]] std::vector<EntryInfo> entries() const;

  [[nodiscard]] const std::filesystem::path& dir() const { return options_.dir; }
  [[nodiscard]] std::string_view engine_version() const {
    return options_.engine_version;
  }

  /// Path an entry for (kind, key) would occupy (exposed for tests that
  /// inject corruption).
  [[nodiscard]] std::filesystem::path entry_path(Artifact kind,
                                                 std::string_view key) const;

 private:
  void evict_if_over_cap();

  StoreOptions options_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> corrupt_{0};
  std::atomic<std::uint64_t> approx_bytes_{0};  ///< Rescanned when cap trips.
  std::mutex evict_mutex_;
};

}  // namespace asipfb::cache
