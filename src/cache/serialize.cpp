#include "cache/serialize.hpp"

#include <bit>
#include <cstring>

namespace asipfb::cache {

namespace {

// --- Byte plumbing ----------------------------------------------------------
// Explicit little-endian encoding, independent of host byte order and of
// struct layout, so cache files written on one platform validate on any
// other (the same discipline sim/baseline_hash.hpp uses for its hashes).

class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s) {
    u64(s.size());
    bytes_.append(s.data(), s.size());
  }

  [[nodiscard]] std::string take() && { return std::move(bytes_); }

 private:
  std::string bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view payload) : data_(payload) {}

  std::uint8_t u8() {
    require(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() {
    require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_++]))
           << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_++]))
           << (8 * i);
    }
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  float f32() { return std::bit_cast<float>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) throw CacheError("cache payload: bad bool byte");
    return v != 0;
  }
  std::string str() {
    const std::uint64_t n = u64();
    require(n);
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  /// Element count of a vector whose elements occupy at least
  /// `min_elem_bytes` each: a corrupted count can never allocate more
  /// than the remaining payload could possibly hold.
  std::size_t count(std::size_t min_elem_bytes) {
    const std::uint64_t n = u64();
    const std::size_t remaining = data_.size() - pos_;
    if (min_elem_bytes == 0) min_elem_bytes = 1;
    if (n > remaining / min_elem_bytes) {
      throw CacheError("cache payload: count exceeds remaining bytes");
    }
    return static_cast<std::size_t>(n);
  }

  void expect_end() const {
    if (pos_ != data_.size()) {
      throw CacheError("cache payload: trailing bytes");
    }
  }

 private:
  void require(std::uint64_t n) const {
    if (n > data_.size() - pos_) {
      throw CacheError("cache payload: truncated");
    }
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

// --- Validated enum decoding ------------------------------------------------

ir::Opcode read_opcode(ByteReader& in) {
  const std::uint8_t v = in.u8();
  if (v >= static_cast<std::uint8_t>(ir::kNumOpcodes)) {
    throw CacheError("cache payload: bad opcode byte");
  }
  return static_cast<ir::Opcode>(v);
}

ir::Type read_type(ByteReader& in) {
  const std::uint8_t v = in.u8();
  if (v > static_cast<std::uint8_t>(ir::Type::Void)) {
    throw CacheError("cache payload: bad type byte");
  }
  return static_cast<ir::Type>(v);
}

ir::IntrinsicKind read_intrinsic(ByteReader& in) {
  const std::uint8_t v = in.u8();
  if (v > static_cast<std::uint8_t>(ir::IntrinsicKind::Floor)) {
    throw CacheError("cache payload: bad intrinsic byte");
  }
  return static_cast<ir::IntrinsicKind>(v);
}

ir::ChainClass read_chain_class(ByteReader& in) {
  const std::uint8_t v = in.u8();
  if (v > static_cast<std::uint8_t>(ir::ChainClass::None)) {
    throw CacheError("cache payload: bad chain-class byte");
  }
  return static_cast<ir::ChainClass>(v);
}

// --- ir::Module -------------------------------------------------------------

void write_instr(ByteWriter& out, const ir::Instr& instr) {
  out.u8(static_cast<std::uint8_t>(instr.op));
  out.boolean(instr.dst.has_value());
  out.u32(instr.dst.has_value() ? instr.dst->id : 0);
  out.u64(instr.args.size());
  for (const ir::Reg r : instr.args) out.u32(r.id);
  out.i32(instr.imm_i);
  out.f32(instr.imm_f);
  out.u8(static_cast<std::uint8_t>(instr.intrinsic));
  out.u32(instr.callee);
  out.u32(instr.target0);
  out.u32(instr.target1);
  out.u64(instr.exec_count);
  out.u32(instr.id);
  out.u32(instr.origin);
  out.boolean(instr.fused_follower);
}

ir::Instr read_instr(ByteReader& in) {
  ir::Instr instr;
  instr.op = read_opcode(in);
  const bool has_dst = in.boolean();
  const std::uint32_t dst = in.u32();
  if (has_dst) instr.dst = ir::Reg{dst};
  const std::size_t nargs = in.count(4);
  instr.args.reserve(nargs);
  for (std::size_t i = 0; i < nargs; ++i) instr.args.push_back(ir::Reg{in.u32()});
  instr.imm_i = in.i32();
  instr.imm_f = in.f32();
  instr.intrinsic = read_intrinsic(in);
  instr.callee = in.u32();
  instr.target0 = in.u32();
  instr.target1 = in.u32();
  instr.exec_count = in.u64();
  instr.id = in.u32();
  instr.origin = in.u32();
  instr.fused_follower = in.boolean();
  return instr;
}

void write_module(ByteWriter& out, const ir::Module& module) {
  out.str(module.name);
  out.u64(module.globals.size());
  for (const ir::GlobalArray& g : module.globals) {
    out.str(g.name);
    out.u8(static_cast<std::uint8_t>(g.elem_type));
    out.u32(g.size);
    out.u32(g.base_address);
    out.u64(g.init.size());
    for (const std::uint32_t w : g.init) out.u32(w);
  }
  out.u64(module.functions.size());
  for (const ir::Function& fn : module.functions) {
    out.str(fn.name);
    out.u8(static_cast<std::uint8_t>(fn.return_type));
    out.u64(fn.params.size());
    for (const ir::Reg r : fn.params) out.u32(r.id);
    out.u64(fn.reg_types.size());
    for (const ir::Type t : fn.reg_types) out.u8(static_cast<std::uint8_t>(t));
    out.u32(fn.frame_words);
    out.u32(fn.next_instr_id);
    out.u64(fn.blocks.size());
    for (const ir::BasicBlock& block : fn.blocks) {
      out.str(block.name);
      out.u64(block.instrs.size());
      for (const ir::Instr& instr : block.instrs) write_instr(out, instr);
    }
  }
}

ir::Module read_module(ByteReader& in) {
  ir::Module module;
  module.name = in.str();
  const std::size_t nglobals = in.count(8);
  module.globals.reserve(nglobals);
  for (std::size_t i = 0; i < nglobals; ++i) {
    ir::GlobalArray g;
    g.name = in.str();
    g.elem_type = read_type(in);
    g.size = in.u32();
    g.base_address = in.u32();
    const std::size_t ninit = in.count(4);
    g.init.reserve(ninit);
    for (std::size_t k = 0; k < ninit; ++k) g.init.push_back(in.u32());
    module.globals.push_back(std::move(g));
  }
  const std::size_t nfuncs = in.count(8);
  module.functions.reserve(nfuncs);
  for (std::size_t i = 0; i < nfuncs; ++i) {
    ir::Function fn;
    fn.name = in.str();
    fn.return_type = read_type(in);
    const std::size_t nparams = in.count(4);
    fn.params.reserve(nparams);
    for (std::size_t k = 0; k < nparams; ++k) fn.params.push_back(ir::Reg{in.u32()});
    const std::size_t nregs = in.count(1);
    fn.reg_types.reserve(nregs);
    for (std::size_t k = 0; k < nregs; ++k) fn.reg_types.push_back(read_type(in));
    fn.frame_words = in.u32();
    fn.next_instr_id = in.u32();
    const std::size_t nblocks = in.count(8);
    fn.blocks.reserve(nblocks);
    for (std::size_t b = 0; b < nblocks; ++b) {
      ir::BasicBlock block;
      block.name = in.str();
      const std::size_t ninstrs = in.count(8);
      block.instrs.reserve(ninstrs);
      for (std::size_t k = 0; k < ninstrs; ++k) {
        block.instrs.push_back(read_instr(in));
      }
      fn.blocks.push_back(std::move(block));
    }
    module.functions.push_back(std::move(fn));
  }
  return module;
}

// --- pipeline::ExecutionResult ----------------------------------------------

void write_execution(ByteWriter& out, const pipeline::ExecutionResult& run) {
  out.i32(run.exit_code);
  out.u64(run.steps);
  out.u64(run.cycles);
  out.u64(run.oob_loads);
  out.u64(run.outputs.size());
  for (const auto& [name, words] : run.outputs) {
    out.str(name);
    out.u64(words.size());
    for (const std::int32_t w : words) out.i32(w);
  }
}

pipeline::ExecutionResult read_execution(ByteReader& in) {
  pipeline::ExecutionResult run;
  run.exit_code = in.i32();
  run.steps = in.u64();
  run.cycles = in.u64();
  run.oob_loads = in.u64();
  const std::size_t nout = in.count(8);
  for (std::size_t i = 0; i < nout; ++i) {
    std::string name = in.str();
    const std::size_t nwords = in.count(4);
    std::vector<std::int32_t> words;
    words.reserve(nwords);
    for (std::size_t k = 0; k < nwords; ++k) words.push_back(in.i32());
    run.outputs.emplace(std::move(name), std::move(words));
  }
  return run;
}

// --- chain::Signature -------------------------------------------------------

void write_signature(ByteWriter& out, const chain::Signature& sig) {
  out.u64(sig.classes.size());
  for (const ir::ChainClass c : sig.classes) {
    out.u8(static_cast<std::uint8_t>(c));
  }
}

chain::Signature read_signature(ByteReader& in) {
  chain::Signature sig;
  const std::size_t n = in.count(1);
  sig.classes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) sig.classes.push_back(read_chain_class(in));
  return sig;
}

}  // namespace

std::string_view to_string(Artifact kind) {
  switch (kind) {
    case Artifact::kPrepared: return "prepared";
    case Artifact::kOptimized: return "optimized";
    case Artifact::kDetection: return "detection";
    case Artifact::kCoverage: return "coverage";
    case Artifact::kExtension: return "extension";
  }
  return "?";
}

std::string serialize(const ir::Module& module) {
  ByteWriter out;
  write_module(out, module);
  return std::move(out).take();
}

std::string serialize(const pipeline::PreparedProgram& prepared) {
  ByteWriter out;
  write_module(out, prepared.module);
  write_execution(out, prepared.baseline_run);
  out.u64(prepared.total_cycles);
  return std::move(out).take();
}

std::string serialize(const chain::DetectionResult& detection) {
  ByteWriter out;
  out.u64(detection.sequences.size());
  for (const chain::SequenceStat& s : detection.sequences) {
    write_signature(out, s.signature);
    out.u64(s.cycles);
    out.u64(s.occurrences);
    out.f64(s.frequency);
  }
  out.u64(detection.total_cycles);
  out.u64(detection.regions);
  out.u64(detection.paths);
  return std::move(out).take();
}

std::string serialize(const chain::CoverageResult& coverage) {
  ByteWriter out;
  out.u64(coverage.steps.size());
  for (const chain::CoverageStep& step : coverage.steps) {
    write_signature(out, step.signature);
    out.f64(step.frequency);
    out.u64(step.cycles);
    out.u64(step.occurrences_taken);
    out.u64(step.matches.size());
    for (const std::vector<chain::OpRef>& match : step.matches) {
      out.u64(match.size());
      for (const auto& [func, instr] : match) {
        out.u32(func);
        out.u32(instr);
      }
    }
  }
  out.f64(coverage.total_coverage);
  out.u64(coverage.total_cycles);
  return std::move(out).take();
}

namespace {

void write_chained(ByteWriter& out, const asip::ChainedInstruction& c) {
  write_signature(out, c.signature);
  out.f64(c.area);
  out.f64(c.delay);
  out.u64(c.cycles_saved);
  out.f64(c.frequency);
  out.boolean(c.fits_cycle);
}

asip::ChainedInstruction read_chained(ByteReader& in) {
  asip::ChainedInstruction c;
  c.signature = read_signature(in);
  c.area = in.f64();
  c.delay = in.f64();
  c.cycles_saved = in.u64();
  c.frequency = in.f64();
  c.fits_cycle = in.boolean();
  return c;
}

}  // namespace

std::string serialize(const asip::ExtensionProposal& proposal) {
  ByteWriter out;
  out.u64(proposal.candidates.size());
  for (const asip::ChainedInstruction& c : proposal.candidates) {
    write_chained(out, c);
  }
  out.u64(proposal.selected.size());
  for (const asip::ChainedInstruction& c : proposal.selected) {
    write_chained(out, c);
  }
  out.f64(proposal.total_area);
  out.u64(proposal.baseline_cycles);
  out.u64(proposal.customized_cycles);
  return std::move(out).take();
}

ir::Module deserialize_module(std::string_view payload) {
  ByteReader in(payload);
  ir::Module module = read_module(in);
  in.expect_end();
  return module;
}

pipeline::PreparedProgram deserialize_prepared(std::string_view payload) {
  ByteReader in(payload);
  pipeline::PreparedProgram prepared;
  prepared.module = read_module(in);
  prepared.baseline_run = read_execution(in);
  prepared.total_cycles = in.u64();
  in.expect_end();
  return prepared;
}

chain::DetectionResult deserialize_detection(std::string_view payload) {
  ByteReader in(payload);
  chain::DetectionResult detection;
  const std::size_t nseq = in.count(8);
  detection.sequences.reserve(nseq);
  for (std::size_t i = 0; i < nseq; ++i) {
    chain::SequenceStat s;
    s.signature = read_signature(in);
    s.cycles = in.u64();
    s.occurrences = in.u64();
    s.frequency = in.f64();
    detection.sequences.push_back(std::move(s));
  }
  detection.total_cycles = in.u64();
  detection.regions = in.u64();
  detection.paths = in.u64();
  in.expect_end();
  return detection;
}

chain::CoverageResult deserialize_coverage(std::string_view payload) {
  ByteReader in(payload);
  chain::CoverageResult coverage;
  const std::size_t nsteps = in.count(8);
  coverage.steps.reserve(nsteps);
  for (std::size_t i = 0; i < nsteps; ++i) {
    chain::CoverageStep step;
    step.signature = read_signature(in);
    step.frequency = in.f64();
    step.cycles = in.u64();
    step.occurrences_taken = in.u64();
    const std::size_t nmatches = in.count(8);
    step.matches.reserve(nmatches);
    for (std::size_t m = 0; m < nmatches; ++m) {
      const std::size_t nops = in.count(8);
      std::vector<chain::OpRef> match;
      match.reserve(nops);
      for (std::size_t k = 0; k < nops; ++k) {
        const ir::FuncId func = in.u32();
        const ir::InstrId instr = in.u32();
        match.emplace_back(func, instr);
      }
      step.matches.push_back(std::move(match));
    }
    coverage.steps.push_back(std::move(step));
  }
  coverage.total_coverage = in.f64();
  coverage.total_cycles = in.u64();
  in.expect_end();
  return coverage;
}

asip::ExtensionProposal deserialize_extension(std::string_view payload) {
  ByteReader in(payload);
  asip::ExtensionProposal proposal;
  const std::size_t ncand = in.count(8);
  proposal.candidates.reserve(ncand);
  for (std::size_t i = 0; i < ncand; ++i) {
    proposal.candidates.push_back(read_chained(in));
  }
  const std::size_t nsel = in.count(8);
  proposal.selected.reserve(nsel);
  for (std::size_t i = 0; i < nsel; ++i) {
    proposal.selected.push_back(read_chained(in));
  }
  proposal.total_area = in.f64();
  proposal.baseline_cycles = in.u64();
  proposal.customized_cycles = in.u64();
  in.expect_end();
  return proposal;
}

// --- Key derivation ----------------------------------------------------------

namespace {

/// FNV-1a with a parameterizable offset basis; two independent runs give
/// the 128 hash bits behind content_hash().
class Fnv1a64 {
 public:
  explicit Fnv1a64(std::uint64_t basis) : h_(basis) {}

  void mix(std::string_view bytes) {
    for (const char c : bytes) {
      h_ ^= static_cast<std::uint8_t>(c);
      h_ *= 1099511628211ull;
    }
    // Length marker between parts: ("ab", "c") and ("a", "bc") must hash
    // differently even though their concatenations agree.
    std::uint64_t n = bytes.size();
    for (int i = 0; i < 8; ++i) {
      h_ ^= n & 0xffu;
      h_ *= 1099511628211ull;
      n >>= 8;
    }
  }

  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_;
};

void hex16(std::string& out, std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) out.push_back(kDigits[(v >> (4 * i)) & 0xf]);
}

/// Canonical bytes of the input bindings: order-preserving, name + raw
/// words (floats by bit pattern), same discipline as the encoders above.
std::string input_bytes(const std::vector<pipeline::WorkloadInput>& inputs) {
  ByteWriter out;
  out.u64(inputs.size());
  for (const pipeline::WorkloadInput& input : inputs) {
    out.u64(input.float_inputs.size());
    for (const auto& [name, values] : input.float_inputs) {
      out.str(name);
      out.u64(values.size());
      for (const float v : values) out.f32(v);
    }
    out.u64(input.int_inputs.size());
    for (const auto& [name, values] : input.int_inputs) {
      out.str(name);
      out.u64(values.size());
      for (const std::int32_t v : values) out.i32(v);
    }
  }
  return std::move(out).take();
}

}  // namespace

std::string content_hash(std::initializer_list<std::string_view> parts) {
  Fnv1a64 lo(1469598103934665603ull);           // Standard FNV offset basis.
  Fnv1a64 hi(0x9e3779b97f4a7c15ull);            // Independent second lane.
  for (const std::string_view part : parts) {
    lo.mix(part);
    hi.mix(part);
  }
  std::string out;
  out.reserve(32);
  hex16(out, lo.value());
  hex16(out, hi.value());
  return out;
}

std::string baseline_key(std::string_view engine_version, std::string_view name,
                         std::string_view source,
                         const std::vector<pipeline::WorkloadInput>& inputs) {
  const std::string in_bytes = input_bytes(inputs);
  return content_hash({engine_version, "prepared", name, source, in_bytes});
}

std::string stage_key(std::string_view baseline, Artifact kind,
                      std::string_view option_key) {
  return content_hash({baseline, to_string(kind), option_key});
}

}  // namespace asipfb::cache
