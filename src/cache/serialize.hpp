// Versioned binary serialization for the persistent artifact cache.
//
// Every expensive Figure-1 artifact — the profiled baseline
// (pipeline::PreparedProgram, i.e. ir::Module + exec_count profile),
// chain::DetectionResult, chain::CoverageResult, and
// asip::ExtensionProposal — round-trips through an explicit little-endian
// byte encoding.  The encoding is *total* (every field, doubles and floats
// by bit pattern) and *canonical* (a pure function of the artifact value),
// so byte equality of two encodings is exactly value equality of the two
// artifacts.  That property is what the replay-verification contract is
// built on: a cached payload is correct iff it equals the encoding of a
// fresh recomputation, byte for byte
// (tests/cache/replay_verify_test.cpp pins this over a corpus sample).
//
// Deserialization is defensive, not trusting: ByteReader bounds-checks
// every read, enum bytes are validated against their ranges, and vector
// counts are sanity-capped by the remaining payload size, so a corrupted
// or truncated payload throws CacheError instead of crashing or returning
// a silently wrong artifact.  cache::Store (store.hpp) catches that and
// degrades to a cold compute.
//
// Key derivation also lives here: baseline_key() hashes (engine version,
// workload name, source bytes, input bindings) and stage_key() extends a
// baseline key with the stage tag and the Session's normalized-options
// byte key — the same byte strings pipeline::Session already memoizes on,
// so disk keys and in-memory keys agree on what "the same computation"
// means.  docs/CACHE.md documents the format and the invalidation rules.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "asip/extension.hpp"
#include "chain/coverage.hpp"
#include "chain/detect.hpp"
#include "pipeline/driver.hpp"

namespace asipfb::cache {

/// Thrown on any malformed payload (truncation, bad enum byte, absurd
/// count).  Callers treat it as a cache miss, never as fatal.
class CacheError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Bumped whenever the byte layout below changes; part of every entry's
/// header, so an old-format file reads as a miss, not garbage.
inline constexpr std::uint32_t kFormatVersion = 1;

/// The artifact families the cache stores — one serializer per family.
enum class Artifact : std::uint8_t {
  kPrepared,   ///< pipeline::PreparedProgram (profiled baseline).
  kOptimized,  ///< ir::Module (optimized variant, profile included).
  kDetection,  ///< chain::DetectionResult.
  kCoverage,   ///< chain::CoverageResult.
  kExtension,  ///< asip::ExtensionProposal.
};
inline constexpr std::size_t kArtifactCount = 5;

/// Stable lower-case tag ("prepared", "optimized", ...); used in key
/// derivation and file names.
[[nodiscard]] std::string_view to_string(Artifact kind);

// --- Encoders (canonical: byte equality == value equality) ------------------

[[nodiscard]] std::string serialize(const ir::Module& module);
[[nodiscard]] std::string serialize(const pipeline::PreparedProgram& prepared);
[[nodiscard]] std::string serialize(const chain::DetectionResult& detection);
[[nodiscard]] std::string serialize(const chain::CoverageResult& coverage);
[[nodiscard]] std::string serialize(const asip::ExtensionProposal& proposal);

// --- Decoders (throw CacheError on any malformed payload) -------------------

[[nodiscard]] ir::Module deserialize_module(std::string_view payload);
[[nodiscard]] pipeline::PreparedProgram deserialize_prepared(
    std::string_view payload);
[[nodiscard]] chain::DetectionResult deserialize_detection(
    std::string_view payload);
[[nodiscard]] chain::CoverageResult deserialize_coverage(
    std::string_view payload);
[[nodiscard]] asip::ExtensionProposal deserialize_extension(
    std::string_view payload);

// --- Key derivation ----------------------------------------------------------

/// 128-bit content hash rendered as 32 hex characters; the cache's file
/// naming unit.  Deterministic across platforms and processes.
[[nodiscard]] std::string content_hash(
    std::initializer_list<std::string_view> parts);

/// Key of a prepared baseline: hashes the engine version, the workload
/// name (the deserialized module must carry the same name bit for bit),
/// the exact source bytes, and every input binding.  The simulator tier
/// (fuse) is deliberately excluded — both tiers are bit-identical by
/// contract, so they share entries.
[[nodiscard]] std::string baseline_key(
    std::string_view engine_version, std::string_view name,
    std::string_view source, const std::vector<pipeline::WorkloadInput>& inputs);

/// Key of a downstream stage artifact: the baseline key (so any change to
/// source, inputs, or engine version invalidates every derived artifact)
/// plus the stage tag and the normalized-options byte key the Session
/// memoizes the artifact under.
[[nodiscard]] std::string stage_key(std::string_view baseline_key,
                                    Artifact kind,
                                    std::string_view option_key);

}  // namespace asipfb::cache
