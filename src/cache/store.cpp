#include "cache/store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <system_error>

namespace asipfb::cache {

namespace {

// Entry framing: everything before the payload that a reader validates.
constexpr char kMagic[8] = {'A', 'S', 'F', 'B', 'C', 'A', 'C', 'H'};
constexpr std::string_view kEntrySuffix = ".art";

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

std::string frame_entry(Artifact kind, std::string_view engine_version,
                        std::string_view payload) {
  std::string out;
  out.reserve(sizeof(kMagic) + 4 + 1 + 8 + engine_version.size() + 16 +
              payload.size());
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, kFormatVersion);
  out.push_back(static_cast<char>(kind));
  put_u64(out, engine_version.size());
  out.append(engine_version);
  put_u64(out, payload.size());
  put_u64(out, fnv1a(payload));
  out.append(payload);
  return out;
}

/// Whole-file read; nullopt on any I/O error (treated as a miss upstream).
std::optional<std::string> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return std::nullopt;
  return bytes;
}

bool key_is_wellformed(std::string_view key) {
  if (key.size() != 32) return false;
  return std::all_of(key.begin(), key.end(), [](char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
  });
}

std::atomic<std::uint64_t> g_temp_seq{0};

}  // namespace

Store::Store(StoreOptions options) : options_(std::move(options)) {
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec || !std::filesystem::is_directory(options_.dir)) {
    throw std::runtime_error("cache::Store: cannot create directory '" +
                             options_.dir.string() + "': " + ec.message());
  }
  std::uint64_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(options_.dir, ec)) {
    std::error_code size_ec;
    const auto size = entry.file_size(size_ec);
    if (!size_ec) total += size;
  }
  approx_bytes_.store(total, std::memory_order_relaxed);
}

std::filesystem::path Store::entry_path(Artifact kind,
                                        std::string_view key) const {
  std::string name;
  name.reserve(to_string(kind).size() + 1 + key.size() + kEntrySuffix.size());
  name.append(to_string(kind));
  name.push_back('-');
  name.append(key);
  name.append(kEntrySuffix);
  return options_.dir / name;
}

std::optional<std::string> Store::load(Artifact kind, std::string_view key) {
  const std::filesystem::path path = entry_path(kind, key);

  // Validation failures mean bytes we wrote got damaged; plain absence or
  // a different engine version is the expected shape of a cold cache.
  enum class Outcome { kHit, kMiss, kCorrupt };
  Outcome outcome = Outcome::kMiss;
  std::optional<std::string> payload;

  try {
    std::optional<std::string> bytes = read_file(path);
    if (bytes.has_value()) {
      const std::string& b = *bytes;
      std::size_t pos = 0;
      const auto remaining = [&] { return b.size() - pos; };

      outcome = Outcome::kCorrupt;  // Until every check below passes.
      if (remaining() >= sizeof(kMagic) &&
          std::memcmp(b.data(), kMagic, sizeof(kMagic)) == 0) {
        pos += sizeof(kMagic);
        if (remaining() >= 4 + 1) {
          const std::uint32_t version = get_u32(b.data() + pos);
          pos += 4;
          const auto file_kind = static_cast<std::uint8_t>(b[pos]);
          pos += 1;
          if (version != kFormatVersion) {
            outcome = Outcome::kMiss;  // Old format: versioned, not damaged.
          } else if (file_kind == static_cast<std::uint8_t>(kind) &&
                     remaining() >= 8) {
            const std::uint64_t engine_len = get_u64(b.data() + pos);
            pos += 8;
            if (engine_len <= remaining()) {
              const std::string_view engine(b.data() + pos,
                                            static_cast<std::size_t>(engine_len));
              pos += static_cast<std::size_t>(engine_len);
              if (engine != options_.engine_version) {
                outcome = Outcome::kMiss;  // Different engine: expected miss.
              } else if (remaining() >= 16) {
                const std::uint64_t payload_len = get_u64(b.data() + pos);
                const std::uint64_t checksum = get_u64(b.data() + pos + 8);
                pos += 16;
                if (payload_len == remaining()) {
                  const std::string_view body(b.data() + pos,
                                              static_cast<std::size_t>(payload_len));
                  if (fnv1a(body) == checksum) {
                    payload.emplace(body);
                    outcome = Outcome::kHit;
                  }
                }
              }
            }
          }
        }
      }
    }
  } catch (...) {
    outcome = Outcome::kCorrupt;
    payload.reset();
  }

  std::error_code ec;
  switch (outcome) {
    case Outcome::kHit:
      hits_.fetch_add(1, std::memory_order_relaxed);
      // LRU touch; best-effort (another process may have evicted it).
      std::filesystem::last_write_time(
          path, std::filesystem::file_time_type::clock::now(), ec);
      break;
    case Outcome::kCorrupt:
      corrupt_.fetch_add(1, std::memory_order_relaxed);
      std::filesystem::remove(path, ec);
      misses_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Outcome::kMiss:
      misses_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  return payload;
}

void Store::save(Artifact kind, std::string_view key, std::string_view payload) {
  try {
    const std::string framed = frame_entry(kind, options_.engine_version, payload);
    const std::filesystem::path final_path = entry_path(kind, key);

    // Temp name unique across processes (pid) and threads (global seq);
    // same directory as the entry so rename() cannot cross filesystems.
    std::string temp_name = ".tmp-";
    temp_name += std::to_string(::getpid());
    temp_name += '-';
    temp_name += std::to_string(g_temp_seq.fetch_add(1, std::memory_order_relaxed));
    const std::filesystem::path temp_path = options_.dir / temp_name;

    const int fd = ::open(temp_path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0) return;
    bool ok = true;
    std::size_t written = 0;
    while (written < framed.size()) {
      const ssize_t n =
          ::write(fd, framed.data() + written, framed.size() - written);
      if (n <= 0) {
        ok = false;
        break;
      }
      written += static_cast<std::size_t>(n);
    }
    if (ok && options_.fsync && ::fsync(fd) != 0) ok = false;
    ::close(fd);

    std::error_code ec;
    if (ok) {
      std::filesystem::rename(temp_path, final_path, ec);
      ok = !ec;
    }
    if (!ok) {
      std::filesystem::remove(temp_path, ec);
      return;
    }
    if (options_.fsync) {
      // Make the rename itself durable: fsync the directory.
      const int dir_fd = ::open(options_.dir.c_str(), O_RDONLY | O_DIRECTORY);
      if (dir_fd >= 0) {
        ::fsync(dir_fd);
        ::close(dir_fd);
      }
    }

    writes_.fetch_add(1, std::memory_order_relaxed);
    approx_bytes_.fetch_add(framed.size(), std::memory_order_relaxed);
    if (approx_bytes_.load(std::memory_order_relaxed) > options_.max_bytes) {
      evict_if_over_cap();
    }
  } catch (...) {
    // Best-effort by contract: a failed save is just a future cold compute.
  }
}

void Store::evict_if_over_cap() {
  std::lock_guard<std::mutex> lock(evict_mutex_);
  try {
    struct OnDisk {
      std::filesystem::path path;
      std::filesystem::file_time_type mtime;
      std::uint64_t size = 0;
    };
    std::vector<OnDisk> files;
    std::uint64_t total = 0;
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(options_.dir, ec)) {
      if (entry.path().filename().string().ends_with(kEntrySuffix)) {
        std::error_code item_ec;
        const auto size = entry.file_size(item_ec);
        const auto mtime = entry.last_write_time(item_ec);
        if (item_ec) continue;  // Concurrently evicted by another process.
        files.push_back({entry.path(), mtime, size});
        total += size;
      }
    }
    // Rescan is the source of truth; the approx counter drifts when other
    // processes share the directory.
    approx_bytes_.store(total, std::memory_order_relaxed);
    if (total <= options_.max_bytes) return;

    std::sort(files.begin(), files.end(),
              [](const OnDisk& a, const OnDisk& b) { return a.mtime < b.mtime; });
    for (const OnDisk& victim : files) {
      if (total <= options_.max_bytes) break;
      std::error_code rm_ec;
      if (std::filesystem::remove(victim.path, rm_ec) && !rm_ec) {
        total -= victim.size;
        approx_bytes_.fetch_sub(victim.size, std::memory_order_relaxed);
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  } catch (...) {
    // Eviction is best-effort; an oversized cache is not an error.
  }
}

StoreStats Store::stats() const {
  StoreStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.corrupt = corrupt_.load(std::memory_order_relaxed);
  return s;
}

std::vector<EntryInfo> Store::entries() const {
  std::vector<EntryInfo> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (!name.ends_with(kEntrySuffix)) continue;
    const std::string_view stem(name.data(),
                                name.size() - kEntrySuffix.size());
    const std::size_t dash = stem.find('-');
    if (dash == std::string_view::npos) continue;
    const std::string_view tag = stem.substr(0, dash);
    const std::string_view key = stem.substr(dash + 1);
    if (!key_is_wellformed(key)) continue;
    bool matched = false;
    EntryInfo info;
    for (std::size_t k = 0; k < kArtifactCount; ++k) {
      const auto kind = static_cast<Artifact>(k);
      if (tag == to_string(kind)) {
        info.kind = kind;
        matched = true;
        break;
      }
    }
    if (!matched) continue;
    info.key = std::string(key);
    std::error_code size_ec;
    const auto size = entry.file_size(size_ec);
    if (!size_ec) info.payload_bytes = size;
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(), [](const EntryInfo& a, const EntryInfo& b) {
    return a.key < b.key || (a.key == b.key && a.kind < b.kind);
  });
  return out;
}

}  // namespace asipfb::cache
