#include "chain/coverage.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace asipfb::chain {

namespace {

using OpKey = OpRef;

/// Enumerates every path of length [min,max] avoiding covered ops and
/// invokes `fn(path_node_indices, weight)` for each.
template <typename Callback>
void for_each_path(const RegionGraph& region, const std::set<OpKey>& covered,
                   const CoverageOptions& options, const Callback& fn) {
  std::vector<std::size_t> path;
  auto covered_node = [&](std::size_t node) {
    return covered.count({region.func, region.nodes[node].instr_id}) != 0;
  };

  const auto extend = [&](const auto& self, std::size_t node,
                          std::uint64_t weight_so_far) -> void {
    const std::uint64_t weight =
        std::min(weight_so_far, region.nodes[node].exec_count);
    if (weight == 0) return;
    path.push_back(node);
    if (path.size() >= static_cast<std::size_t>(options.min_length)) {
      fn(path, weight);
    }
    if (path.size() < static_cast<std::size_t>(options.max_length)) {
      for (std::size_t succ : region.succs[node]) {
        if (options.require_adjacency &&
            region.nodes[succ].adjacent_pred != node) {
          continue;
        }
        if (!covered_node(succ)) self(self, succ, weight);
      }
    }
    path.pop_back();
  };

  for (std::size_t start = 0; start < region.nodes.size(); ++start) {
    if (!covered_node(start)) extend(extend, start, UINT64_MAX);
  }
}

}  // namespace

CoverageResult coverage_analysis(const ir::Module& module,
                                 const CoverageOptions& options,
                                 std::uint64_t total_cycles) {
  CoverageResult result;
  result.total_cycles =
      total_cycles != 0 ? total_cycles : module.total_dynamic_ops();
  if (result.total_cycles == 0) return result;

  const auto regions = build_region_graphs(module);
  std::set<OpKey> covered;

  auto frequency = [&](std::uint64_t cycles) {
    return 100.0 * static_cast<double>(cycles) /
           static_cast<double>(result.total_cycles);
  };

  for (int round = 0; round < options.max_rounds; ++round) {
    // Phase 1: aggregate remaining frequency per signature.
    std::map<Signature, std::uint64_t> aggregate;
    for (const auto& region : regions) {
      for_each_path(region, covered, options,
                    [&](const std::vector<std::size_t>& path, std::uint64_t weight) {
                      Signature sig;
                      sig.classes.reserve(path.size());
                      for (std::size_t node : path) {
                        sig.classes.push_back(region.nodes[node].chain_class);
                      }
                      aggregate[sig] +=
                          weight * static_cast<std::uint64_t>(path.size());
                    });
    }
    if (aggregate.empty()) break;

    // Candidates in descending aggregate order.
    std::vector<std::pair<std::uint64_t, Signature>> candidates;
    candidates.reserve(aggregate.size());
    for (auto& [sig, cycles] : aggregate) candidates.emplace_back(cycles, sig);
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });

    // Phase 2: realize (greedy non-overlapping matching) each of the top
    // aggregate candidates and commit the one with the highest realized
    // coverage.  Aggregate frequencies over-count overlapping paths of long
    // signatures, so ranking must use realized values.
    struct Realization {
      Signature signature;
      std::set<OpKey> taken;
      std::vector<std::vector<OpKey>> matches;
      std::uint64_t cycles = 0;
      std::size_t occurrences = 0;
    };
    Realization best;
    const std::size_t candidate_limit = 16;
    for (std::size_t ci = 0; ci < candidates.size() && ci < candidate_limit; ++ci) {
      const auto& [agg_cycles, sig] = candidates[ci];
      if (frequency(agg_cycles) < options.floor_percent) break;
      if (agg_cycles <= best.cycles) break;  // Aggregate bounds realized.

      struct Occurrence {
        std::uint64_t weight;
        std::vector<OpKey> ops;
      };
      std::vector<Occurrence> occurrences;
      for (const auto& region : regions) {
        for_each_path(
            region, covered, options,
            [&](const std::vector<std::size_t>& path, std::uint64_t weight) {
              if (path.size() != sig.classes.size()) return;
              for (std::size_t k = 0; k < path.size(); ++k) {
                if (region.nodes[path[k]].chain_class != sig.classes[k]) return;
              }
              Occurrence occ;
              occ.weight = weight;
              occ.ops.reserve(path.size());
              for (std::size_t node : path) {
                occ.ops.emplace_back(region.func, region.nodes[node].instr_id);
              }
              occurrences.push_back(std::move(occ));
            });
      }
      std::stable_sort(occurrences.begin(), occurrences.end(),
                       [](const Occurrence& a, const Occurrence& b) {
                         return a.weight > b.weight;
                       });

      Realization r;
      r.signature = sig;
      for (const auto& occ : occurrences) {
        bool disjoint = true;
        for (const OpKey& op : occ.ops) {
          if (r.taken.count(op) != 0) disjoint = false;
        }
        if (!disjoint) continue;
        for (const OpKey& op : occ.ops) r.taken.insert(op);
        r.matches.push_back(occ.ops);
        r.cycles += occ.weight * occ.ops.size();
        ++r.occurrences;
      }
      if (r.cycles > best.cycles) best = std::move(r);
    }

    if (frequency(best.cycles) < options.floor_percent) break;

    covered.insert(best.taken.begin(), best.taken.end());
    CoverageStep step;
    step.signature = best.signature;
    step.cycles = best.cycles;
    step.frequency = frequency(best.cycles);
    step.occurrences_taken = best.occurrences;
    step.matches = std::move(best.matches);
    result.total_coverage += step.frequency;
    result.steps.push_back(std::move(step));
  }
  return result;
}

}  // namespace asipfb::chain
