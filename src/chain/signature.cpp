#include "chain/signature.hpp"

namespace asipfb::chain {

std::string Signature::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    if (i != 0) out += '-';
    out += std::string(ir::to_string(classes[i]));
  }
  return out;
}

std::optional<Signature> parse_signature(std::string_view text) {
  Signature sig;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t dash = text.find('-', start);
    const std::string_view word =
        text.substr(start, dash == std::string_view::npos ? text.size() - start
                                                          : dash - start);
    bool found = false;
    for (int c = 0; c <= static_cast<int>(ir::ChainClass::None); ++c) {
      const auto cc = static_cast<ir::ChainClass>(c);
      if (cc != ir::ChainClass::None && ir::to_string(cc) == word) {
        sig.classes.push_back(cc);
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
    if (dash == std::string_view::npos) break;
    start = dash + 1;
  }
  if (sig.classes.empty()) return std::nullopt;
  return sig;
}

}  // namespace asipfb::chain
