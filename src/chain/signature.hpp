// Sequence signatures — the names of candidate chained instructions.
//
// A signature is the ordered list of chain operator classes along a data-flow
// path, e.g. multiply-add (the MAC of the paper's TMS320C5x example) or
// fload-fmultiply.  Signatures are the unit of aggregation for frequencies
// (Figures 3-6, Table 2) and the unit of selection for coverage (Table 3)
// and for ASIP instruction-set extension.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ir/opcode.hpp"

namespace asipfb::chain {

struct Signature {
  std::vector<ir::ChainClass> classes;

  [[nodiscard]] std::size_t length() const { return classes.size(); }

  /// Paper-style name: classes joined with '-' ("add-shift-add").
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Signature& a, const Signature& b) {
    return a.classes == b.classes;
  }
  friend bool operator<(const Signature& a, const Signature& b) {
    return a.classes < b.classes;
  }
};

/// Parses "multiply-add" style names; returns nullopt on unknown class names.
[[nodiscard]] std::optional<Signature> parse_signature(std::string_view text);

}  // namespace asipfb::chain
