#include "chain/report.hpp"

#include "support/table.hpp"

namespace asipfb::chain {

std::string render_top_sequences(const DetectionResult& result, std::size_t top_n) {
  TextTable table({"#", "sequence", "dyn freq", "cycles", "occurrences"});
  for (std::size_t i = 0; i < result.sequences.size() && i < top_n; ++i) {
    const auto& stat = result.sequences[i];
    table.add_row({std::to_string(i + 1), stat.signature.to_string(),
                   format_percent(stat.frequency), std::to_string(stat.cycles),
                   std::to_string(stat.occurrences)});
  }
  return table.render();
}

std::string render_coverage(const CoverageResult& result) {
  TextTable table({"sequence", "frequency", "occurrences"});
  for (const auto& step : result.steps) {
    table.add_row({step.signature.to_string(), format_percent(step.frequency),
                   std::to_string(step.occurrences_taken)});
  }
  table.add_row({"TOTAL COVERAGE", format_percent(result.total_coverage), ""});
  return table.render();
}

}  // namespace asipfb::chain
