// Iterative sequence-coverage analysis (paper section 7, Table 3).
//
// Repeatedly: find the signature with the highest aggregate frequency over
// still-uncovered operations, greedily commit a maximal set of
// NON-OVERLAPPING occurrences of it (each operation is covered by at most
// one chained instruction), and continue until no signature achieves the
// significance floor.  Total coverage is the percentage of dynamic
// operation-cycles covered by the selected chained instructions.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/detect.hpp"

namespace asipfb::chain {

struct CoverageOptions {
  int min_length = 2;
  int max_length = 5;
  double floor_percent = 4.0;  ///< Stop below this realized frequency.
  int max_rounds = 12;         ///< Maximum chained instructions selected.
  bool require_adjacency = false;  ///< See DetectorOptions::require_adjacency.
};

/// Reference to one static instruction of a module.
using OpRef = std::pair<ir::FuncId, ir::InstrId>;

/// One selected chained instruction.
struct CoverageStep {
  Signature signature;
  double frequency = 0.0;           ///< Realized (non-overlapping) frequency.
  std::uint64_t cycles = 0;         ///< Covered operation-cycles.
  std::size_t occurrences_taken = 0;
  /// The committed non-overlapping occurrences: the exact instructions each
  /// chained-instruction instance fuses (ordered producer -> consumer).
  /// Consumed by the ASIP rewriter (asip/rewrite.hpp).
  std::vector<std::vector<OpRef>> matches;
};

struct CoverageResult {
  std::vector<CoverageStep> steps;
  double total_coverage = 0.0;      ///< Sum of step frequencies.
  std::uint64_t total_cycles = 0;   ///< Denominator used.
};

/// Runs the iterative analysis.  `total_cycles` as in detect_sequences.
[[nodiscard]] CoverageResult coverage_analysis(const ir::Module& module,
                                               const CoverageOptions& options = {},
                                               std::uint64_t total_cycles = 0);

}  // namespace asipfb::chain
