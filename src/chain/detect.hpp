// Chainable-sequence detection (the paper's step-4 sequence detection
// analyzer).
//
// Enumerates data-flow paths of bounded length in every region graph with a
// branch-and-bound search: a partial path is abandoned when even its best
// possible extension cannot contribute a frequency above the pruning
// threshold (path weights only shrink as paths grow, so the bound is sound).
// Each surviving path of length L executing w times accounts for L*w
// operation-cycles; per-signature totals divided by the program's total
// dynamic operation count give the paper's "dynamic frequency".
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "chain/region_graph.hpp"
#include "chain/signature.hpp"

namespace asipfb::chain {

struct DetectorOptions {
  int min_length = 2;            ///< Shortest sequence reported (paper: 2).
  int max_length = 5;            ///< Longest sequence searched (paper: 5).
  /// Branch-and-bound floor: paths whose maximum possible contribution is
  /// below this percentage of total cycles are pruned.  0 disables pruning
  /// (exhaustive enumeration).
  double prune_percent = 0.0;
  /// Restrict paths to textually adjacent operations — the "no scheduler"
  /// model of the paper's unoptimized analysis: without percolation the
  /// compiler cannot reorder code, so only already-consecutive operations
  /// can be fused into one chained instruction.  The pipeline driver sets
  /// this for optimization level O0.
  bool require_adjacency = false;
  std::size_t max_occurrences = 4'000'000;  ///< Hard safety valve.
};

/// Aggregate statistics for one signature.
struct SequenceStat {
  Signature signature;
  std::uint64_t cycles = 0;          ///< Sum over occurrences of weight*length.
  std::size_t occurrences = 0;       ///< Number of distinct paths.
  double frequency = 0.0;            ///< 100 * cycles / total_cycles.
};

struct DetectionResult {
  std::vector<SequenceStat> sequences;  ///< Sorted by descending frequency.
  std::uint64_t total_cycles = 0;       ///< Denominator used.
  std::size_t regions = 0;              ///< Regions searched.
  std::size_t paths = 0;                ///< Occurrences enumerated.

  /// Frequency of one signature (0 when absent).
  [[nodiscard]] double frequency_of(const Signature& sig) const;
};

/// Runs detection over a profiled module.  `total_cycles` fixes the
/// frequency denominator (pass the unoptimized profile's total so levels are
/// comparable, as the paper does); 0 means "use this module's own total".
[[nodiscard]] DetectionResult detect_sequences(const ir::Module& module,
                                               const DetectorOptions& options = {},
                                               std::uint64_t total_cycles = 0);

}  // namespace asipfb::chain
