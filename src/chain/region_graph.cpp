#include "chain/region_graph.hpp"

#include <map>

#include "analysis/traces.hpp"

namespace asipfb::chain {

std::vector<RegionGraph> build_region_graphs(const ir::Module& module) {
  std::vector<RegionGraph> regions;

  for (std::size_t f = 0; f < module.functions.size(); ++f) {
    const auto& fn = module.functions[f];
    const auto traces = analysis::form_traces(fn);

    for (const auto& trace : traces) {
      RegionGraph region;
      region.func = static_cast<ir::FuncId>(f);
      region.blocks = trace;

      // Latest definition of each register so far; values are indices into
      // region.nodes, or -1 for a definition by a non-chainable op.
      std::map<std::uint32_t, int> latest_def;
      // Most recent chainable op with only constants after it (see
      // RegionNode::adjacent_pred).
      std::size_t adjacent_candidate = SIZE_MAX;

      for (ir::BlockId b : trace) {
        for (const auto& instr : fn.blocks[b].instrs) {
          int this_node = -1;
          if (ir::chainable(instr.op)) {
            RegionNode node;
            node.instr_id = instr.id;
            node.chain_class = instr.chain_class();
            node.exec_count = instr.exec_count;
            node.adjacent_pred = adjacent_candidate;
            this_node = static_cast<int>(region.nodes.size());
            region.nodes.push_back(node);
            region.succs.emplace_back();

            // Chain edges from the latest chainable producers of operands
            // (deduplicated: one edge even if both operands match).
            int last_producer = -1;
            for (ir::Reg a : instr.args) {
              const auto def = latest_def.find(a.id);
              if (def == latest_def.end()) continue;
              const int producer = def->second;
              if (producer < 0 || producer == last_producer) continue;
              region.succs[static_cast<std::size_t>(producer)].push_back(
                  static_cast<std::size_t>(this_node));
              last_producer = producer;
            }
          }
          if (instr.dst) latest_def[instr.dst->id] = this_node;

          // Track textual adjacency: a chainable op becomes the candidate
          // for its textual successor; any other instruction (constant
          // materialization, copies, branches, ...) breaks the run — the
          // unscheduled 3-address stream executes strictly in order, so a
          // wedged instruction prevents single-instruction fusion.
          adjacent_candidate =
              this_node >= 0 ? static_cast<std::size_t>(this_node) : SIZE_MAX;
        }
      }

      bool has_edges = false;
      for (const auto& s : region.succs) {
        if (!s.empty()) has_edges = true;
      }
      if (has_edges) regions.push_back(std::move(region));
    }
  }
  return regions;
}

}  // namespace asipfb::chain
