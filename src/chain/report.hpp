// Designer-facing rendering of detection and coverage results.
#pragma once

#include <string>

#include "chain/coverage.hpp"
#include "chain/detect.hpp"

namespace asipfb::chain {

/// Table of the top-N sequences with frequencies and occurrence counts.
[[nodiscard]] std::string render_top_sequences(const DetectionResult& result,
                                               std::size_t top_n = 20);

/// Table of selected chained instructions with per-step and total coverage.
[[nodiscard]] std::string render_coverage(const CoverageResult& result);

}  // namespace asipfb::chain
