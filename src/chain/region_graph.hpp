// Per-region chain dependence graphs.
//
// A region is one profile-guided *trace* of the (possibly
// percolation-scheduled) program graph — see analysis/traces.hpp.  The
// trace's blocks are scanned as one linear instruction sequence; an edge
// p -> c exists when c reads the value p defines with no intervening
// redefinition — i.e. the pair could be implemented as a chained operation
// (result forwarded directly, paper section 4).  Edge discovery follows
// *all* operand positions, so address arithmetic chains into loads/stores
// (add-load) and value chains into store data (fmul-fsub-fstore), as the
// paper reports.  Occurrence weights use the minimum execution count along
// the path, which accounts for control leaving the trace between producer
// and consumer.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/function.hpp"

namespace asipfb::chain {

struct RegionNode {
  ir::InstrId instr_id = ir::kNoInstr;    ///< Stable identity for coverage.
  ir::ChainClass chain_class = ir::ChainClass::None;
  std::uint64_t exec_count = 0;           ///< Profile weight of this op.
  /// Node index of the chainable op textually immediately before this one
  /// (SIZE_MAX when the preceding instruction is non-chainable or absent).
  /// An edge p -> c with c.adjacent_pred == p is realizable WITHOUT a
  /// scheduler — the only kind of pair the paper's "no optimization"
  /// analysis can exploit.  Constant materialization breaks adjacency: in
  /// unscheduled 1995-style 3-address code constants are loaded into
  /// registers between the producer and consumer, and it takes the
  /// scheduler's code motion to move them out of the way.
  std::size_t adjacent_pred = SIZE_MAX;
};

struct RegionGraph {
  ir::FuncId func = ir::kNoFunc;
  std::vector<ir::BlockId> blocks;        ///< Trace blocks, in order.
  std::vector<RegionNode> nodes;
  std::vector<std::vector<std::size_t>> succs;  ///< Chain edges (node indices).
};

/// Builds the chain graph of every trace of every function.  Regions without
/// any chain edge are omitted.
[[nodiscard]] std::vector<RegionGraph> build_region_graphs(const ir::Module& module);

}  // namespace asipfb::chain
