#include "chain/detect.hpp"

#include <algorithm>

namespace asipfb::chain {

namespace {

/// Depth-first path enumeration with the branch-and-bound cutoff.
class PathSearch {
public:
  PathSearch(const RegionGraph& region, const DetectorOptions& options,
             std::uint64_t prune_cycles, std::map<Signature, SequenceStat>& stats,
             std::size_t& paths)
      : region_(region), options_(options), prune_cycles_(prune_cycles),
        stats_(stats), paths_(paths) {}

  void run() {
    for (std::size_t start = 0; start < region_.nodes.size(); ++start) {
      path_.clear();
      extend(start, UINT64_MAX);
      if (paths_ >= options_.max_occurrences) return;
    }
  }

private:
  void extend(std::size_t node, std::uint64_t weight_so_far) {
    const auto& n = region_.nodes[node];
    const std::uint64_t weight = std::min(weight_so_far, n.exec_count);
    // Bound: the best any extension of this path can contribute is
    // weight * max_length cycles.  Prune when that is already too small.
    if (weight * static_cast<std::uint64_t>(options_.max_length) < prune_cycles_) {
      return;
    }
    path_.push_back(node);
    if (path_.size() >= static_cast<std::size_t>(options_.min_length)) {
      record(weight);
    }
    if (path_.size() < static_cast<std::size_t>(options_.max_length) &&
        paths_ < options_.max_occurrences) {
      for (std::size_t succ : region_.succs[node]) {
        if (options_.require_adjacency &&
            region_.nodes[succ].adjacent_pred != node) {
          continue;
        }
        extend(succ, weight);
      }
    }
    path_.pop_back();
  }

  void record(std::uint64_t weight) {
    if (weight == 0 || paths_ >= options_.max_occurrences) return;
    Signature sig;
    sig.classes.reserve(path_.size());
    for (std::size_t node : path_) {
      sig.classes.push_back(region_.nodes[node].chain_class);
    }
    auto& stat = stats_[sig];
    stat.signature = std::move(sig);
    stat.cycles += weight * static_cast<std::uint64_t>(path_.size());
    ++stat.occurrences;
    ++paths_;
  }

  const RegionGraph& region_;
  const DetectorOptions& options_;
  const std::uint64_t prune_cycles_;
  std::map<Signature, SequenceStat>& stats_;
  std::size_t& paths_;
  std::vector<std::size_t> path_;
};

}  // namespace

double DetectionResult::frequency_of(const Signature& sig) const {
  for (const auto& stat : sequences) {
    if (stat.signature == sig) return stat.frequency;
  }
  return 0.0;
}

DetectionResult detect_sequences(const ir::Module& module,
                                 const DetectorOptions& options,
                                 std::uint64_t total_cycles) {
  DetectionResult result;
  result.total_cycles = total_cycles != 0 ? total_cycles : module.total_dynamic_ops();

  const auto regions = build_region_graphs(module);
  result.regions = regions.size();

  const auto prune_cycles = static_cast<std::uint64_t>(
      options.prune_percent / 100.0 * static_cast<double>(result.total_cycles));

  std::map<Signature, SequenceStat> stats;
  for (const auto& region : regions) {
    PathSearch(region, options, prune_cycles, stats, result.paths).run();
    if (result.paths >= options.max_occurrences) break;
  }

  result.sequences.reserve(stats.size());
  for (auto& [sig, stat] : stats) {
    (void)sig;
    stat.frequency = result.total_cycles == 0
                         ? 0.0
                         : 100.0 * static_cast<double>(stat.cycles) /
                               static_cast<double>(result.total_cycles);
    result.sequences.push_back(std::move(stat));
  }
  std::sort(result.sequences.begin(), result.sequences.end(),
            [](const SequenceStat& a, const SequenceStat& b) {
              if (a.frequency != b.frequency) return a.frequency > b.frequency;
              return a.signature < b.signature;
            });
  return result;
}

}  // namespace asipfb::chain
